//! Async multi-lane serving over real worker threads: the wall-clock
//! front-end of the serving stack.
//!
//! The [`DeadlineScheduler`](crate::scheduler::DeadlineScheduler)
//! replays traffic on a *virtual* timeline: deterministic, perfect for
//! experiments, but synchronous — a caller hands over a finished batch
//! and blocks for the whole drain, so a tight 20 ms sentence still
//! waits for the call that carries it. [`Server`] is the missing
//! front-end: clients [`submit`](Server::submit) requests from any
//! thread and get a [`ResponseHandle`] back immediately; per-task
//! **engine shard pools** — `shards_per_task` owned
//! [`EdgeBertEngine`](crate::engine::EdgeBertEngine) clones per served
//! task, each pinned to its own worker thread with task affinity —
//! drain bounded admission lanes in EDF order. No external runtime:
//! the whole subsystem is `std` threads, mutex-guarded queues, and
//! rendezvous channels.
//!
//! ```text
//!  client threads          per-task lanes             shard pools
//!  ──────────────   ┌──▶ [SST-2  lane: EDF ▥▥▥] ──▶ engine #0, #1 …
//!  submit(task,req)─┼──▶ [QNLI   lane: EDF ▥▥ ] ──▶ engine #0, #1 …
//!        │          └──▶ [MNLI   lane: EDF ▥  ] ──▶ engine #0, #1 …
//!        ▼                     │                        │
//!  ResponseHandle ◀────────────┴── ServerResponse ◀─────┘
//! ```
//!
//! **Queue-aware DVFS slack** is the reason this module lives in the
//! energy stack and not a generic thread pool. The paper's Algorithm 2
//! computes `Freq_opt = N_cycles / (T − T_elapsed)` — but under the
//! PR 2 scheduler `T_elapsed` never included time spent *queued*, so a
//! sentence that sat 30 ms of its 50 ms budget in a lane was still
//! handed the full 50 ms as compute budget: DVFS stretched its compute
//! into a deadline that had already half expired, the sojourn blew the
//! target, and the lane stayed busy longer, compounding the backlog.
//! Workers here measure each job's real queueing delay at pop time and
//! stamp it into the request
//! ([`InferenceRequest::with_elapsed_queue_s`]), so the engine budgets
//! V/F against the *true remaining slack*. Waits below
//! [`ServerConfig::slack_floor_s`] are treated as zero — scheduler
//! wake-up jitter is measurement noise, and clamping it keeps a
//! no-queueing submission bit-identical to
//! [`TaskRuntime::serve`](crate::serving::TaskRuntime::serve).
//!
//! Everything else is the operational contract a front-end owes its
//! callers: bounded lanes with typed backpressure
//! ([`SubmitError::QueueFull`]), typed routing failures
//! ([`SubmitError::TaskNotServed`]), graceful [`shutdown`]
//! (Server::shutdown) that drains every admitted request before
//! workers exit, and per-lane [`ServerStats`] (admissions, rejections,
//! violations, queue depths and delays).

mod lane;
mod stats;

pub use stats::{LaneStats, ServerStats};

use crate::engine::{deadline_met, EdgeBertEngine, InferenceRequest, InferenceResponse};
use crate::scheduler::SchedulePolicy;
use crate::serving::MultiTaskRuntime;
use edgebert_tasks::Task;
use lane::{Job, Lane};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Engine shards (worker threads, each owning one engine clone) per
    /// served task. The modeled deployment is one accelerator lane per
    /// shard.
    pub shards_per_task: usize,
    /// Per-lane admission bound: submissions beyond it are refused with
    /// [`SubmitError::QueueFull`]. `0` refuses everything — useful to
    /// test caller-side backpressure handling.
    pub queue_capacity: usize,
    /// Pop-order policy for every lane (EDF by default, FIFO as the
    /// baseline).
    pub policy: SchedulePolicy,
    /// Deduct each job's measured queueing delay from the DVFS compute
    /// budget (see the module docs). Off, the server is "slack-blind":
    /// it adds none of its own measured wait, like PR 2's scheduler.
    /// (The engine always honors any stamp the *submitter* put on the
    /// request — blindness is a server property, not an erasure.)
    pub queue_aware_slack: bool,
    /// Measured waits below this are treated as zero slack, seconds.
    /// This is the noise floor separating real queueing from scheduler
    /// wake-up jitter; it also pins the acceptance contract that an
    /// unqueued submission serves bit-identically to
    /// [`TaskRuntime::serve`](crate::serving::TaskRuntime::serve).
    pub slack_floor_s: f64,
    /// Emulate the accelerator by sleeping each shard for the modeled
    /// compute latency after serving. This turns the server into a
    /// wall-clock hardware-in-the-loop testbed: lanes are busy for as
    /// long as the modeled silicon would be, so measured queueing
    /// delays, utilization, and tail latencies are physically
    /// meaningful. Off (the default), shards only spend the software
    /// model's compute time and the server is a fast async front-end.
    pub emulate_service_time: bool,
}

impl Default for ServerConfig {
    /// One shard per task, 1024-deep lanes, EDF, queue-aware slack on
    /// with a 1 ms noise floor, no service-time emulation.
    fn default() -> Self {
        Self {
            shards_per_task: 1,
            queue_capacity: 1024,
            policy: SchedulePolicy::EarliestDeadline,
            queue_aware_slack: true,
            slack_floor_s: 1e-3,
            emulate_service_time: false,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// No lane serves the request's task.
    TaskNotServed(Task),
    /// The task's lane is at capacity; retry later or shed load.
    QueueFull {
        /// The full lane's task.
        task: Task,
        /// Its configured admission bound.
        capacity: usize,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::TaskNotServed(task) => {
                write!(f, "task {task} is not served by this server")
            }
            SubmitError::QueueFull { task, capacity } => {
                write!(f, "task {task} lane is at capacity ({capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The outcome of one served submission: the engine response plus the
/// wall-clock serving record.
///
/// Time mixes two clocks on purpose: `queue_delay_s` is *measured*
/// (real seconds between admission and pop), while the compute term is
/// the *modeled* hardware latency. With
/// [`ServerConfig::emulate_service_time`] on, the two coincide — the
/// shard is really busy for the modeled time — and the sojourn is a
/// genuine wall-clock response time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerResponse {
    /// The task that served the request.
    pub task: Task,
    /// Which shard of the task's pool ran it.
    pub shard: usize,
    /// Admission sequence number in the task's lane.
    pub submission: u64,
    /// The engine's response (service levels resolved, compute costed).
    pub response: InferenceResponse,
    /// Measured wall-clock queueing delay, seconds.
    pub queue_delay_s: f64,
    /// Elapsed queue time the engine's DVFS budget was charged with,
    /// seconds: the measured delay plus any submitter pre-stamp when
    /// queue-aware slack is on and the wait cleared the noise floor,
    /// else just the pre-stamp (which the engine always honors).
    pub slack_deducted_s: f64,
    /// End-to-end response time: queueing delay (plus any submitter
    /// pre-stamp) + modeled compute latency, seconds.
    pub sojourn_s: f64,
    /// Whether the sojourn met the request's latency target under the
    /// one [`deadline_met`] rule, charging exactly the elapsed time
    /// the server accounted for: the full measured wait when it was
    /// deducted from the DVFS budget (or in slack-blind mode, where
    /// unaccounted queueing is the point), but not a sub-noise-floor
    /// wait in queue-aware mode — that was declared jitter and kept
    /// out of the budget, so it stays out of the verdict too. The
    /// inner `response.result.deadline_met` is the engine's own
    /// verdict on the slack it was told about.
    pub deadline_met: bool,
}

/// A claim on one submission's future [`ServerResponse`].
///
/// The server guarantees every *admitted* request is served — graceful
/// shutdown drains the lanes before workers exit — so
/// [`wait`](Self::wait) always completes unless a worker thread
/// panicked.
#[derive(Debug)]
pub struct ResponseHandle {
    task: Task,
    submission: u64,
    rx: Receiver<ServerResponse>,
}

impl ResponseHandle {
    /// The task the submission routed to.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The admission sequence number in the task's lane.
    pub fn submission(&self) -> u64 {
        self.submission
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> ServerResponse {
        self.rx
            .recv()
            .expect("an admitted request is always served before shutdown")
    }

    /// Blocks up to `timeout` for the response; returns the handle back
    /// on timeout so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServerResponse, ResponseHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => {
                panic!("an admitted request is always served before shutdown")
            }
        }
    }
}

struct LaneEntry {
    lane: Arc<Lane>,
    /// The lane engine's default latency target, for EDF deadlines of
    /// requests that carry none.
    default_target_s: f64,
}

/// The channel-based async serving front-end (see the module docs).
pub struct Server {
    cfg: ServerConfig,
    epoch: Instant,
    lanes: Vec<LaneEntry>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over `runtime`'s served tasks: one bounded lane
    /// per task, drained by [`ServerConfig::shards_per_task`] worker
    /// threads each owning a clone of the task runtime's engine (an
    /// `Arc` refcount bump on the shared weights — the same affinity
    /// contract as [`DeadlineScheduler`](crate::scheduler::DeadlineScheduler)).
    pub fn start(runtime: &MultiTaskRuntime, cfg: ServerConfig) -> Self {
        assert!(
            cfg.shards_per_task >= 1,
            "a lane needs at least one shard to drain it"
        );
        assert!(
            cfg.slack_floor_s.is_finite() && cfg.slack_floor_s >= 0.0,
            "slack floor must be finite and non-negative"
        );
        let epoch = Instant::now();
        let mut lanes = Vec::new();
        let mut workers = Vec::new();
        for task in runtime.tasks() {
            let rt = runtime.runtime(task).expect("task listed as served");
            let lane = Arc::new(Lane::new(task, cfg.queue_capacity, cfg.policy));
            for shard in 0..cfg.shards_per_task {
                let lane = Arc::clone(&lane);
                let engine = rt.engine().clone();
                let handle = std::thread::Builder::new()
                    .name(format!("edgebert-{task}-{shard}"))
                    .spawn(move || shard_loop(lane, engine, shard, cfg))
                    .expect("spawn shard worker");
                workers.push(handle);
            }
            lanes.push(LaneEntry {
                default_target_s: rt.engine().default_latency_target_s(),
                lane,
            });
        }
        Self {
            cfg,
            epoch,
            lanes,
            workers,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The tasks this server admits.
    pub fn tasks(&self) -> Vec<Task> {
        self.lanes.iter().map(|entry| entry.lane.task).collect()
    }

    /// Requests admitted but not yet popped by a shard, across lanes.
    pub fn queued(&self) -> usize {
        self.lanes
            .iter()
            .map(|entry| entry.lane.queue.lock().expect("lane mutex").jobs.len())
            .sum()
    }

    /// Submits one request, returning a handle to its future response.
    ///
    /// Admission is non-blocking: an unknown task, a full lane, or a
    /// shutdown in progress refuse immediately with a typed
    /// [`SubmitError`] instead of silently dropping — callers decide
    /// whether to retry, reroute, or shed.
    pub fn submit(
        &self,
        task: Task,
        request: InferenceRequest,
    ) -> Result<ResponseHandle, SubmitError> {
        let entry = self
            .lanes
            .iter()
            .find(|entry| entry.lane.task == task)
            .ok_or(SubmitError::TaskNotServed(task))?;
        let target_s = request.latency_target_s.unwrap_or(entry.default_target_s);
        // The EDF key is the *remaining* budget: a request pre-stamped
        // with upstream queueing is closer to its deadline than a
        // fresh one with the same target. Requests come off the wire,
        // so a non-finite target must not poison the pop comparator —
        // it sorts last (and the engine flags it at serve time).
        let remaining_s = target_s - request.effective_elapsed_queue_s();
        let key_s = if remaining_s.is_finite() {
            remaining_s
        } else {
            f64::INFINITY
        };
        let (tx, rx) = sync_channel(1);
        let mut queue = entry.lane.queue.lock().expect("lane mutex");
        if queue.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if queue.jobs.len() >= entry.lane.capacity {
            queue.rejected += 1;
            return Err(SubmitError::QueueFull {
                task,
                capacity: entry.lane.capacity,
            });
        }
        let submission = queue.next_seq;
        queue.next_seq += 1;
        queue.submitted += 1;
        let now = Instant::now();
        queue.jobs.push(Job {
            seq: submission,
            deadline_s: (now - self.epoch).as_secs_f64() + key_s,
            enqueued_at: now,
            request,
            reply: tx,
        });
        queue.high_water = queue.high_water.max(queue.jobs.len());
        drop(queue);
        entry.lane.available.notify_one();
        Ok(ResponseHandle {
            task,
            submission,
            rx,
        })
    }

    /// A snapshot of the per-lane counters.
    pub fn stats(&self) -> ServerStats {
        let lanes = self
            .lanes
            .iter()
            .map(|entry| {
                let queue = entry.lane.queue.lock().expect("lane mutex");
                let tally = *entry.lane.tally.lock().expect("tally mutex");
                let served = tally.served.max(1) as f64;
                LaneStats {
                    task: entry.lane.task,
                    shards: self.cfg.shards_per_task,
                    submitted: queue.submitted,
                    rejected: queue.rejected,
                    served: tally.served,
                    violations: tally.violations,
                    queued: queue.jobs.len(),
                    queue_high_water: queue.high_water,
                    queue_delay_mean_s: tally.queue_delay_total_s / served,
                    queue_delay_max_s: tally.queue_delay_max_s,
                    slack_deducted_mean_s: tally.slack_deducted_total_s / served,
                }
            })
            .collect();
        ServerStats { lanes }
    }

    /// Gracefully shuts down: admission closes, every already-admitted
    /// request is served, shard workers exit, and the final stats
    /// snapshot is returned. Outstanding [`ResponseHandle`]s stay
    /// valid — their responses were delivered during the drain.
    pub fn shutdown(mut self) -> ServerStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        for entry in &self.lanes {
            entry.lane.queue.lock().expect("lane mutex").shutting_down = true;
            entry.lane.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("shard worker exits cleanly");
        }
    }
}

impl Drop for Server {
    /// Dropping the server performs the same graceful drain as
    /// [`shutdown`](Self::shutdown).
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// One shard worker: pop in policy order, measure the wait, stamp the
/// slack, serve, (optionally) hold the lane for the modeled latency,
/// deliver.
fn shard_loop(lane: Arc<Lane>, engine: EdgeBertEngine, shard: usize, cfg: ServerConfig) {
    while let Some(job) = lane.next_job() {
        let queue_delay_s = job.enqueued_at.elapsed().as_secs_f64();
        // Any pre-stamp from the submitter (an upstream hop's measured
        // wait) counts toward the total elapsed queue time.
        let pre_stamp_s = job.request.effective_elapsed_queue_s();
        let elapsed_s = pre_stamp_s + queue_delay_s;
        // Elapsed queue time the engine's DVFS budget is charged with.
        // The engine always honors the stamp a request carries —
        // "slack-blind" means the *server* adds none of its own
        // measured wait on top, not that a submitter's stamp is
        // erased. The noise floor gates the *measured* wait alone: a
        // request pre-stamped above the floor must not have sub-floor
        // wake-up jitter folded into its budget either.
        let budgeted_s = if cfg.queue_aware_slack && queue_delay_s >= cfg.slack_floor_s {
            elapsed_s
        } else {
            pre_stamp_s
        };
        let serve_started = Instant::now();
        let response: InferenceResponse = if budgeted_s > pre_stamp_s {
            engine.serve(&job.request.clone().with_elapsed_queue_s(budgeted_s))
        } else {
            // No server-side deduction: serve the request exactly as
            // submitted, bit-identical to `TaskRuntime::serve`.
            engine.serve(&job.request)
        };
        if cfg.emulate_service_time {
            // Hold the lane for the modeled hardware latency. The
            // software forward pass already consumed real time, so
            // only the remainder is slept — lane busy time is the
            // modeled service time, not the sum of both.
            let spent_s = serve_started.elapsed().as_secs_f64();
            std::thread::sleep(Duration::from_secs_f64(
                (response.result.latency_s - spent_s).clamp(0.0, 10.0),
            ));
        }
        let sojourn_s = elapsed_s + response.result.latency_s;
        // The verdict charges exactly the elapsed time the server
        // accounted for. In queue-aware mode a sub-floor wait was
        // declared measurement noise and not deducted from the DVFS
        // budget, so it must not flip the verdict either — otherwise an
        // *idle* server would mark every sentence whose compute
        // stretches exactly onto its target as missed, on microseconds
        // of wake-up jitter. The slack-blind baseline charges the full
        // measured wait: not accounting for queueing is precisely the
        // failure it exists to demonstrate.
        let charged_s = if cfg.queue_aware_slack {
            budgeted_s
        } else {
            elapsed_s
        };
        let met = deadline_met(
            charged_s + response.result.latency_s,
            response.latency_target_s,
        );
        {
            let mut tally = lane.tally.lock().expect("tally mutex");
            tally.served += 1;
            if !met {
                tally.violations += 1;
            }
            tally.queue_delay_total_s += queue_delay_s;
            tally.queue_delay_max_s = tally.queue_delay_max_s.max(queue_delay_s);
            tally.slack_deducted_total_s += budgeted_s;
        }
        // The client may have stopped waiting; a dead handle is not a
        // server error.
        let _ = job.reply.send(ServerResponse {
            task: lane.task,
            shard,
            submission: job.seq,
            response,
            queue_delay_s,
            slack_deducted_s: budgeted_s,
            sojourn_s,
            deadline_met: met,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::SweepCache;
    use crate::engine::{EngineBuilder, EntropyThresholds};
    use crate::predictor::EntropyPredictor;
    use crate::serving::TaskRuntime;
    use edgebert_model::{AlbertConfig, AlbertModel};
    use edgebert_tasks::{Dataset, TaskGenerator, VocabLayout};
    use edgebert_tensor::Rng;

    fn fixture_runtime() -> (MultiTaskRuntime, Dataset) {
        let layout = VocabLayout::standard();
        let cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
        let mut rng = Rng::seed_from(23);
        let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
        let gen = TaskGenerator::standard(Task::Sst2, cfg.max_seq_len);
        let data = gen.generate(16, 7);
        let cache = SweepCache::build(&model, &data);
        let pred = EntropyPredictor::train(&cache.entropy_dataset(), 40, 3);
        let lut = pred.to_lut(32, 1.1);
        let builder = EngineBuilder::new(Arc::new(model), Arc::new(lut))
            .uniform_thresholds(EntropyThresholds::uniform(0.3))
            .latency_target(60e-3);
        let rt = TaskRuntime::from_builder(Task::Sst2, builder);
        (MultiTaskRuntime::from_runtimes([rt]), data)
    }

    fn blind_config() -> ServerConfig {
        ServerConfig {
            queue_aware_slack: false,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn unknown_task_is_a_typed_routing_error() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        let req = InferenceRequest::new(data.examples()[0].tokens.clone());
        assert!(matches!(
            server.submit(Task::Mnli, req),
            Err(SubmitError::TaskNotServed(Task::Mnli))
        ));
        assert_eq!(server.tasks(), vec![Task::Sst2]);
    }

    #[test]
    fn zero_capacity_lane_exerts_deterministic_backpressure() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(
            &rt,
            ServerConfig {
                queue_capacity: 0,
                ..blind_config()
            },
        );
        for _ in 0..3 {
            let req = InferenceRequest::new(data.examples()[0].tokens.clone());
            assert!(matches!(
                server.submit(Task::Sst2, req),
                Err(SubmitError::QueueFull {
                    task: Task::Sst2,
                    capacity: 0
                })
            ));
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected(), 3);
        assert_eq!(stats.submitted(), 0);
        assert_eq!(stats.served(), 0);
    }

    #[test]
    fn slack_blind_responses_are_bit_identical_to_direct_serve() {
        let (rt, data) = fixture_runtime();
        let engine = rt.runtime(Task::Sst2).expect("served").engine().clone();
        let server = Server::start(
            &rt,
            ServerConfig {
                shards_per_task: 2,
                ..blind_config()
            },
        );
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for (i, ex) in data.iter().enumerate() {
            let req = InferenceRequest::new(ex.tokens.clone())
                .with_latency_target(20e-3 + 5e-3 * i as f64);
            expected.push(engine.serve(&req));
            handles.push(server.submit(Task::Sst2, req).expect("admitted"));
        }
        for (handle, want) in handles.into_iter().zip(expected) {
            let got = handle.wait();
            assert_eq!(got.response, want);
            assert_eq!(got.slack_deducted_s, 0.0);
            assert_eq!(got.task, Task::Sst2);
            assert!(got.shard < 2);
            assert!(got.queue_delay_s >= 0.0);
            assert_eq!(
                got.deadline_met,
                deadline_met(got.sojourn_s, got.response.latency_target_s)
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.served(), data.len() as u64);
        assert_eq!(stats.violations(), {
            // recomputable from the lane snapshot
            stats.lane(Task::Sst2).expect("lane").violations
        });
    }

    #[test]
    fn non_finite_wire_targets_do_not_poison_the_lane() {
        // Regression: a NaN latency target off the wire used to panic
        // the EDF pop comparator inside a shard worker, poisoning the
        // lane mutex and aborting the process on Drop. Garbage targets
        // now sort last and are flagged infeasible by the engine.
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        let mut handles = Vec::new();
        for (i, bad) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
            .into_iter()
            .enumerate()
        {
            let req =
                InferenceRequest::new(data.examples()[i].tokens.clone()).with_latency_target(bad);
            handles.push(server.submit(Task::Sst2, req).expect("admitted"));
        }
        // A sane request rides along and must be served normally.
        let sane = server
            .submit(
                Task::Sst2,
                InferenceRequest::new(data.examples()[3].tokens.clone()).with_latency_target(50e-3),
            )
            .expect("admitted");
        assert_eq!(sane.wait().response.latency_target_s, 50e-3);
        for handle in handles {
            handle.wait(); // delivered, not panicked
        }
        let stats = server.shutdown();
        assert_eq!(stats.served(), 4);
    }

    #[test]
    fn idle_queue_aware_server_does_not_charge_wakeup_jitter() {
        // Regression: a sentence whose DVFS stretches compute exactly
        // onto its target used to be judged "missed" on an idle
        // queue-aware server, because the microseconds of worker
        // wake-up jitter — deliberately below the slack floor and NOT
        // deducted from the budget — were still charged to the sojourn
        // verdict. Sub-floor waits stay out of both.
        let (rt, data) = fixture_runtime();
        let strict = TaskRuntime::from_builder(
            Task::Sst2,
            rt.runtime(Task::Sst2)
                .expect("served")
                .builder()
                .uniform_thresholds(EntropyThresholds::uniform(0.0)),
        );
        let tokens = data.examples()[0].tokens.clone();
        let direct = strict
            .engine()
            .serve(&InferenceRequest::new(tokens.clone()).with_latency_target(60e-3));
        assert!(
            direct.result.deadline_met && direct.result.latency_s > 50e-3,
            "fixture must stretch compute onto the target ({} s)",
            direct.result.latency_s
        );
        let server = Server::start(
            &MultiTaskRuntime::from_runtimes([strict]),
            ServerConfig {
                // Queue-aware, with a floor generous enough that a
                // slow CI machine's wake-up jitter stays under it.
                slack_floor_s: 20e-3,
                ..ServerConfig::default()
            },
        );
        let resp = server
            .submit(
                Task::Sst2,
                InferenceRequest::new(tokens).with_latency_target(60e-3),
            )
            .expect("admitted")
            .wait();
        assert_eq!(resp.response, direct, "idle serve is bit-identical");
        assert_eq!(resp.slack_deducted_s, 0.0);
        assert!(
            resp.deadline_met,
            "sub-floor wake-up jitter ({} s) must not flip the verdict",
            resp.queue_delay_s
        );

        // Same contract for a request pre-stamped *above* the floor:
        // the floor gates the measured wait alone, so jitter is not
        // folded into the stamp and the response stays bit-identical
        // to serving the stamped request directly.
        let stamped = InferenceRequest::new(data.examples()[1].tokens.clone())
            .with_latency_target(90e-3)
            .with_elapsed_queue_s(40e-3);
        let want = rt
            .runtime(Task::Sst2)
            .expect("served")
            .builder()
            .uniform_thresholds(EntropyThresholds::uniform(0.0))
            .build()
            .serve(&stamped);
        let got = server.submit(Task::Sst2, stamped).expect("admitted").wait();
        assert_eq!(
            got.response, want,
            "pre-stamped idle serve is bit-identical"
        );
        assert_eq!(got.slack_deducted_s, 40e-3);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_every_admitted_request() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        let handles: Vec<ResponseHandle> = data
            .iter()
            .map(|ex| {
                server
                    .submit(Task::Sst2, InferenceRequest::new(ex.tokens.clone()))
                    .expect("admitted")
            })
            .collect();
        // Shut down immediately: the drain must serve everything that
        // was admitted before handles are waited on.
        let stats = server.shutdown();
        assert_eq!(stats.served(), data.len() as u64);
        assert_eq!(stats.queued(), 0);
        for handle in handles {
            let resp = handle
                .wait_timeout(Duration::from_secs(5))
                .expect("response was delivered during the drain");
            assert!(resp.response.result.energy_j > 0.0);
        }
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        // Close admission by hand (shutdown consumes the server, so
        // poke the lane the way close_and_join does).
        for entry in &server.lanes {
            entry.lane.queue.lock().expect("lane mutex").shutting_down = true;
            entry.lane.available.notify_all();
        }
        let req = InferenceRequest::new(data.examples()[0].tokens.clone());
        assert!(matches!(
            server.submit(Task::Sst2, req),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
