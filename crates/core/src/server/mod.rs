//! Async multi-lane serving over real worker threads: the wall-clock
//! front-end of the serving stack.
//!
// analyzer: wall-clock-module reason="the server IS the wall-clock serving path: deadlines, queueing delays, and DVFS slack are measured against real time by design"
//!
//! The [`DeadlineScheduler`](crate::scheduler::DeadlineScheduler)
//! replays traffic on a *virtual* timeline: deterministic, perfect for
//! experiments, but synchronous — a caller hands over a finished batch
//! and blocks for the whole drain, so a tight 20 ms sentence still
//! waits for the call that carries it. [`Server`] is the missing
//! front-end: clients [`submit`](Server::submit) requests from any
//! thread and get a [`ResponseHandle`] back immediately; per-task
//! **engine shard pools** — `shards_per_task` owned
//! [`EdgeBertEngine`](crate::engine::EdgeBertEngine) clones per served
//! task, each pinned to its own worker thread with task affinity —
//! drain bounded admission lanes in EDF order. No external runtime:
//! the whole subsystem is `std` threads, mutex-guarded queues, and
//! rendezvous channels.
//!
//! ```text
//!  client threads          per-task lanes             shard pools
//!  ──────────────   ┌──▶ [SST-2  lane: EDF ▥▥▥] ──▶ engine #0, #1 …
//!  submit(task,req)─┼──▶ [QNLI   lane: EDF ▥▥ ] ──▶ engine #0, #1 …
//!        │          └──▶ [MNLI   lane: EDF ▥  ] ──▶ engine #0, #1 …
//!        ▼                     │                        │
//!  ResponseHandle ◀────────────┴── ServerResponse ◀─────┘
//! ```
//!
//! **Queue-aware DVFS slack** is the reason this module lives in the
//! energy stack and not a generic thread pool. The paper's Algorithm 2
//! computes `Freq_opt = N_cycles / (T − T_elapsed)` — but under the
//! PR 2 scheduler `T_elapsed` never included time spent *queued*, so a
//! sentence that sat 30 ms of its 50 ms budget in a lane was still
//! handed the full 50 ms as compute budget: DVFS stretched its compute
//! into a deadline that had already half expired, the sojourn blew the
//! target, and the lane stayed busy longer, compounding the backlog.
//! Workers here measure each job's real queueing delay at pop time and
//! stamp it into the request
//! ([`InferenceRequest::with_elapsed_queue_s`]), so the engine budgets
//! V/F against the *true remaining slack*. Waits below
//! [`ServerConfig::slack_floor_s`] are treated as zero — scheduler
//! wake-up jitter is measurement noise, and clamping it keeps a
//! no-queueing submission bit-identical to
//! [`TaskRuntime::serve`](crate::serving::TaskRuntime::serve).
//!
//! **Preemptive lanes** are what the resumable-session redesign buys.
//! Workers serve each sentence through a layer-granular
//! [`InferenceSession`](crate::session::InferenceSession)
//! ([`EdgeBertEngine::begin`]) instead of a monolithic `serve` call,
//! and poll their lane between layer steps: when a strictly
//! tighter-deadline job is queued (per
//! [`ServerConfig::preemption`]), the running session is *parked* at
//! the layer boundary — hidden state and cost accounting checkpointed
//! back onto the lane — the tight job runs, and parked sessions resume
//! EDF-ordered with a fresh DVFS decision against their remaining
//! slack. A long stretched sentence can no longer hold its lane
//! hostage for a tight arrival's whole budget.
//!
//! **Queue-pressure-aware stretch** ([`ServerConfig::pressure_stretch`])
//! attacks the same failure from the admission side: at pop time the
//! worker looks at the tightest deadline still waiting behind the
//! popped job and caps its DVFS stretch window so the successor can
//! still run at nominal inside its own deadline
//! ([`InferenceRequest::with_stretch_cap_s`]) — a greedy sentence
//! stops stealing slack from queued tighter work before it even
//! starts.
//!
//! **Overload control** ([`ServerConfig::overload`]) is the survival
//! layer above both: a per-lane hysteresis ladder
//! ([`crate::overload`]) watches the backlog's estimated drain time
//! against the lane's deadline horizon and, under pressure, *degrades*
//! admitted work — accuracy tier dropped a notch, entropy-exit
//! threshold scaled up, bounded by each request's
//! [`InferenceRequest::max_degradation`] floor (default: none) — so
//! sentences exit earlier and the lane drains; when degradation cannot
//! restore feasibility, it *sheds* infeasible arrivals at admission
//! with a typed [`SubmitError::Shed`] carrying a retry hint, instead
//! of letting them queue and die. Disabled by default, and inert for
//! requests that never opt into degradation.
//!
//! **Elastic serving** ([`ServerConfig::elastic`]) dissolves the
//! static lane↔shard binding when load is skewed: every worker keeps a
//! *home* lane it drains first, but an idle shard may **steal** the
//! EDF-tightest parked session from any other lane (sessions are
//! checkpointable — see [`SessionCheckpoint`](crate::session::SessionCheckpoint)
//! — so any engine shard of the right depth can resume one), or
//! **attach** to the most pressured foreign lane and drain it as an
//! extra shard until its work is done. Attached shards count in the
//! pressure signal and the admission drain estimates, so the overload
//! ladder sees the grown pool and sheds less. Under a flash crowd on
//! one task, the idle tasks' shards absorb the spike instead of
//! spinning idle next to a melting lane. Off by default — a disabled
//! elastic config keeps every shard pinned to its home lane and the
//! server bit-identical to a static pool.
//!
//! Everything else is the operational contract a front-end owes its
//! callers: bounded lanes with typed backpressure
//! ([`SubmitError::QueueFull`]), typed routing failures
//! ([`SubmitError::TaskNotServed`]), typed worker-loss reporting
//! ([`ResponseHandle::wait`] returns [`WorkerLost`] instead of
//! panicking), graceful [`shutdown`](Server::shutdown) that drains
//! every admitted request — parked sessions included — before workers
//! exit, and per-lane [`ServerStats`] (admissions, rejections,
//! violations, preemptions, queue/parked depths and delays).

mod lane;
mod stats;

pub use stats::{LaneStats, ServerStats};

use crate::energy::{EnergyConfig, FleetCoordinator, LaneObservation};
use crate::engine::{deadline_met, EdgeBertEngine, InferenceRequest, InferenceResponse};
use crate::overload::{LadderStep, OverloadConfig};
use crate::scheduler::SchedulePolicy;
use crate::serving::MultiTaskRuntime;
use crate::session::InferenceSession;
use crate::telemetry::{
    LaneSample, LaneTelemetry, LaneTelemetrySnapshot, Telemetry, TelemetryConfig,
    TelemetrySnapshot, TraceEventKind,
};
use edgebert_tasks::Task;
use lane::{Job, JobContext, Lane, Popped, Work};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When a shard parks its running session for a queued arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreemptionPolicy {
    /// Never preempt: a dispatched sentence runs to completion (the
    /// pre-session behavior, and the default).
    Off,
    /// Park the running session at the next layer boundary when a
    /// queued job's absolute deadline is tighter than the running
    /// job's by strictly more than the gap, seconds. `DeadlineGap(0.0)`
    /// preempts for any strictly tighter arrival; a positive gap adds
    /// hysteresis so near-equal deadlines don't thrash the lane with
    /// park/resume transitions (each park costs a fresh
    /// nominal→decision transition at resume).
    DeadlineGap(f64),
}

impl PreemptionPolicy {
    /// Whether a running job at `running_deadline_s` should yield to a
    /// queued job at `queued_deadline_s` (absolute server-clock
    /// deadlines).
    fn should_preempt(self, running_deadline_s: f64, queued_deadline_s: f64) -> bool {
        match self {
            PreemptionPolicy::Off => false,
            PreemptionPolicy::DeadlineGap(gap) => running_deadline_s - queued_deadline_s > gap,
        }
    }
}

/// Elastic pool behavior ([`ServerConfig::elastic`]): whether and how
/// idle shards roam across lanes (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticConfig {
    /// Master switch. Off (the default), every shard drains only its
    /// home lane and the server is bit-identical to a static pool —
    /// zero stolen/migrated/resize counters, byte-identical responses.
    /// On, [`ServerConfig::pressure_stretch`] is forced off: pop-time
    /// stretch capping assumes the popping worker *is* the lane, and a
    /// pool that grows and steals breaks that premise.
    pub enabled: bool,
    /// An idle shard resumes the EDF-tightest parked session from any
    /// foreign lane (work stealing). The resume charges parked wall
    /// time against the sentence's slack exactly as a home resume
    /// does.
    pub work_stealing: bool,
    /// An idle shard attaches to the most pressured foreign lane and
    /// drains it as an extra shard (autoscaling), detaching when the
    /// work it took is done.
    pub autoscale: bool,
    /// Minimum foreign-lane pressure (see
    /// [`pressure`](crate::overload::pressure)) before an idle shard
    /// attaches. Below it, a lane is considered healthy enough to
    /// drain itself. Must be finite and non-negative.
    pub grow_pressure: f64,
    /// How long an idle elastic shard sleeps between cross-pool scans,
    /// seconds. The home lane's condvar still wakes it immediately for
    /// home work; the poll bounds how stale its view of *foreign*
    /// lanes can get. Must be finite and positive.
    pub idle_poll_s: f64,
}

impl Default for ElasticConfig {
    /// Disabled; when enabled, stealing and autoscaling both on, a 0.5
    /// grow-pressure threshold (half the lane's deadline horizon
    /// committed), and a 500 µs idle poll.
    fn default() -> Self {
        Self {
            enabled: false,
            work_stealing: true,
            autoscale: true,
            grow_pressure: 0.5,
            idle_poll_s: 500e-6,
        }
    }
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Engine shards (worker threads, each owning one engine clone) per
    /// served task. The modeled deployment is one accelerator lane per
    /// shard.
    pub shards_per_task: usize,
    /// Per-lane admission bound: submissions beyond it are refused with
    /// [`SubmitError::QueueFull`]. `0` refuses everything — useful to
    /// test caller-side backpressure handling.
    pub queue_capacity: usize,
    /// Pop-order policy for every lane (EDF by default, FIFO as the
    /// baseline).
    pub policy: SchedulePolicy,
    /// Deduct each job's measured queueing delay from the DVFS compute
    /// budget (see the module docs). Off, the server is "slack-blind":
    /// it adds none of its own measured wait, like PR 2's scheduler.
    /// (The engine always honors any stamp the *submitter* put on the
    /// request — blindness is a server property, not an erasure.)
    pub queue_aware_slack: bool,
    /// Measured waits below this are treated as zero slack, seconds.
    /// This is the noise floor separating real queueing from scheduler
    /// wake-up jitter; it also pins the acceptance contract that an
    /// unqueued submission serves bit-identically to
    /// [`TaskRuntime::serve`](crate::serving::TaskRuntime::serve).
    pub slack_floor_s: f64,
    /// Emulate the accelerator by sleeping each shard for the modeled
    /// compute latency after serving. This turns the server into a
    /// wall-clock hardware-in-the-loop testbed: lanes are busy for as
    /// long as the modeled silicon would be, so measured queueing
    /// delays, utilization, and tail latencies are physically
    /// meaningful. Off (the default), shards only spend the software
    /// model's compute time and the server is a fast async front-end.
    pub emulate_service_time: bool,
    /// Preemption policy: whether (and by how much of a deadline gap)
    /// a queued arrival parks the running session at a layer boundary.
    /// Off by default.
    pub preemption: PreemptionPolicy,
    /// Queue-pressure-aware stretch: at pop time, cap the popped job's
    /// DVFS stretch window by the tightest successor deadline still
    /// waiting on the lane (minus the lane's nominal service
    /// estimate), so a greedy sentence stops stealing slack from
    /// queued tighter work. Applied only on single-shard lanes — with
    /// several shards the queued successor typically dispatches
    /// concurrently on another one, so capping would spend energy
    /// without a tail win. Off by default — the cap trades a little
    /// of the greedy sentence's energy for cross-class tail latency.
    pub pressure_stretch: bool,
    /// The overload control ladder (see [`crate::overload`] and the
    /// module docs): pressure-driven degradation of admitted work and
    /// admission shedding of infeasible arrivals, with hysteresis.
    /// Disabled by default — every lane then behaves bit-identically
    /// to a pre-overload server.
    pub overload: OverloadConfig,
    /// Elastic pool behavior: work stealing of parked sessions across
    /// lanes and pressure-driven autoscaling of per-task shard pools.
    /// Disabled by default — shards then stay pinned to their home
    /// lane and the server is bit-identical to a static pool.
    pub elastic: ElasticConfig,
    /// Telemetry: per-request trace spans, per-lane latency/energy
    /// histograms, and periodic lane time-series sampling (see
    /// [`crate::telemetry`]). `None` (the default) records nothing and
    /// adds zero allocations to the request path; `Some` observes only
    /// — admission decisions, request numbering, and inference
    /// arithmetic are bit-identical either way.
    pub telemetry: Option<TelemetryConfig>,
    /// Fleet energy budgeting (see [`crate::energy`]): a coordinator
    /// thread tracks each lane's measured power draw and periodically
    /// allocates per-lane energy envelopes (watts) from a configured
    /// fleet cap, waterfilling headroom toward queue pressure.
    /// Envelopes bound the DVFS *operating point* of popped work — a
    /// sentence whose deadline needs a forbidden point runs at the
    /// fastest allowed one and its verdict is judged honestly against
    /// the real target (the miss surfaces in stats, never silently
    /// re-priced). `None` (the default) spawns no coordinator and
    /// stamps no envelopes: the server is bit-identical to a
    /// pre-energy one.
    pub energy: Option<EnergyConfig>,
}

impl Default for ServerConfig {
    /// One shard per task, 1024-deep lanes, EDF, queue-aware slack on
    /// with a 1 ms noise floor, no service-time emulation, no
    /// preemption, no pressure stretch, no elasticity, no energy
    /// budgeting.
    fn default() -> Self {
        Self {
            shards_per_task: 1,
            queue_capacity: 1024,
            policy: SchedulePolicy::EarliestDeadline,
            queue_aware_slack: true,
            slack_floor_s: 1e-3,
            emulate_service_time: false,
            preemption: PreemptionPolicy::Off,
            pressure_stretch: false,
            overload: OverloadConfig::default(),
            elastic: ElasticConfig::default(),
            telemetry: None,
            energy: None,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitError {
    /// No lane serves the request's task.
    TaskNotServed(Task),
    /// The task's lane is at capacity; retry later or shed load.
    QueueFull {
        /// The full lane's task.
        task: Task,
        /// Its configured admission bound.
        capacity: usize,
        /// The queue depth observed at refusal (≥ `capacity`).
        depth: usize,
        /// How long until a slot plausibly frees, seconds: the lane's
        /// nominal per-job service estimate divided across its shards.
        retry_after_hint_s: f64,
    },
    /// The overload ladder shed this request at admission: at the
    /// observed pressure, the backlog ahead of it would consume its
    /// whole deadline budget before it could start, so it would queue
    /// and die. Retrying after `retry_after_hint_s` — or resubmitting
    /// with a looser target / a nonzero
    /// [`max_degradation`](crate::engine::InferenceRequest::max_degradation)
    /// — may be admitted. Only returned when
    /// [`ServerConfig::overload`] is enabled.
    Shed {
        /// The shedding lane's task.
        task: Task,
        /// The pressure signal at refusal (see
        /// [`pressure`](crate::overload::pressure)).
        pressure: f64,
        /// Estimated wait until the backlog drains enough for this
        /// request to be feasible, seconds.
        retry_after_hint_s: f64,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::TaskNotServed(task) => {
                write!(f, "task {task} is not served by this server")
            }
            SubmitError::QueueFull {
                task,
                capacity,
                depth,
                retry_after_hint_s,
            } => {
                write!(
                    f,
                    "task {task} lane is at capacity ({depth}/{capacity} queued); \
                     retry in ~{:.1} ms",
                    retry_after_hint_s * 1e3
                )
            }
            SubmitError::Shed {
                task,
                pressure,
                retry_after_hint_s,
            } => {
                write!(
                    f,
                    "task {task} lane shed the request at pressure {pressure:.2}; \
                     retry in ~{:.1} ms",
                    retry_after_hint_s * 1e3
                )
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The outcome of one served submission: the engine response plus the
/// wall-clock serving record.
///
/// Time mixes two clocks on purpose: `queue_delay_s` is *measured*
/// (real seconds between admission and pop), while the compute term is
/// the *modeled* hardware latency. With
/// [`ServerConfig::emulate_service_time`] on, the two coincide — the
/// shard is really busy for the modeled time — and the sojourn is a
/// genuine wall-clock response time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerResponse {
    /// The task that served the request.
    pub task: Task,
    /// Which shard finished it — the index within the serving worker's
    /// *home* pool. With elasticity disabled that is always a shard of
    /// this task's own pool; an elastic server may finish the request
    /// on a foreign task's shard (stealing/autoscaling).
    pub shard: usize,
    /// Admission sequence number in the task's lane.
    pub submission: u64,
    /// The engine's response (service levels resolved, compute costed).
    pub response: InferenceResponse,
    /// Measured wall-clock queueing delay, seconds.
    pub queue_delay_s: f64,
    /// Elapsed queue time the engine's DVFS budget was charged with,
    /// seconds: the measured delay plus any submitter pre-stamp when
    /// queue-aware slack is on and the wait cleared the noise floor,
    /// else just the pre-stamp (which the engine always honors).
    pub slack_deducted_s: f64,
    /// Times this sentence's session was parked at a layer boundary
    /// for a tighter arrival (0 without preemption).
    pub preemptions: u32,
    /// Wall time the session spent parked, charged against the
    /// sentence's slack and its sojourn, seconds.
    pub parked_s: f64,
    /// Accuracy-tier notches the overload ladder degraded this
    /// sentence by (0 on every default path — the ladder disabled, the
    /// lane unpressured, or the request's `max_degradation` floor at
    /// zero).
    pub degraded_notches: u8,
    /// End-to-end response time: queueing delay (plus any submitter
    /// pre-stamp), parked time, and modeled compute latency, seconds.
    pub sojourn_s: f64,
    /// Whether the sojourn met the request's latency target under the
    /// one [`deadline_met`] rule, charging exactly the elapsed time
    /// the server accounted for: the full measured wait when it was
    /// deducted from the DVFS budget (or in slack-blind mode, where
    /// unaccounted queueing is the point), but not a sub-noise-floor
    /// wait in queue-aware mode — that was declared jitter and kept
    /// out of the budget, so it stays out of the verdict too. The
    /// inner `response.result.deadline_met` is the engine's own
    /// verdict on the slack it was told about.
    pub deadline_met: bool,
    /// Modeled energy this sentence's compute drew, joules — a copy of
    /// `response.result.energy_j` hoisted to the serving record so
    /// fleet-level accounting (energy per request, measured lane
    /// power) never digs through the engine response. Includes any
    /// DVFS clamping an energy envelope imposed.
    pub energy_j: f64,
}

/// The worker thread serving a submission died before delivering its
/// response (it panicked, or the process is tearing the server down
/// ungracefully). The server's graceful-shutdown drain guarantees this
/// never happens in normal operation — it is the typed form of what
/// used to be a panic inside [`ResponseHandle::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLost {
    /// The task lane the submission was admitted to.
    pub task: Task,
    /// The lost submission's admission sequence number.
    pub submission: u64,
}

impl std::fmt::Display for WorkerLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker serving {} submission #{} died before delivering its response",
            self.task, self.submission
        )
    }
}

impl std::error::Error for WorkerLost {}

/// The outcome of waiting on a submission: the response, or a typed
/// [`WorkerLost`] when the serving worker died with the reply channel
/// dropped.
pub type ServeOutcome = Result<ServerResponse, WorkerLost>;

/// A claim on one submission's future [`ServerResponse`].
///
/// The server guarantees every *admitted* request is served — graceful
/// shutdown drains the lanes before workers exit — so
/// [`wait`](Self::wait) always completes with `Ok` unless a worker
/// thread died (a panic inside a custom backend, an abort mid-drain),
/// which surfaces as the typed [`WorkerLost`] error rather than a
/// panic in the *caller's* thread.
#[derive(Debug)]
pub struct ResponseHandle {
    task: Task,
    submission: u64,
    rx: Receiver<ServerResponse>,
}

impl ResponseHandle {
    /// The task the submission routed to.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The admission sequence number in the task's lane.
    pub fn submission(&self) -> u64 {
        self.submission
    }

    /// Blocks until the response arrives, or reports [`WorkerLost`] if
    /// the serving worker died with the reply channel dropped.
    pub fn wait(self) -> ServeOutcome {
        self.rx.recv().map_err(|_| WorkerLost {
            task: self.task,
            submission: self.submission,
        })
    }

    /// Blocks up to `timeout` for the outcome; returns the handle back
    /// on timeout so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeOutcome, ResponseHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Ok(Ok(response)),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => Ok(Err(WorkerLost {
                task: self.task,
                submission: self.submission,
            })),
        }
    }
}

struct LaneEntry {
    lane: Arc<Lane>,
    /// The lane engine's default latency target, for EDF deadlines of
    /// requests that carry none.
    default_target_s: f64,
    /// The lane's engine (an `Arc` clone on the shared weights), for
    /// admission-time envelope pricing: the backend knows how much an
    /// energy envelope slows its fastest allowed operating point.
    engine: EdgeBertEngine,
}

/// One lane plus the engine that serves it — the unit an elastic shard
/// roams over. The registry (one entry per served task, shared by every
/// worker) is what lets a shard materialize *any* lane's work, not just
/// its home task's.
struct PoolEntry {
    lane: Arc<Lane>,
    engine: EdgeBertEngine,
}

/// The channel-based async serving front-end (see the module docs).
pub struct Server {
    cfg: ServerConfig,
    epoch: Instant,
    lanes: Vec<LaneEntry>,
    workers: Vec<JoinHandle<()>>,
    /// Telemetry hub, present iff [`ServerConfig::telemetry`] is set.
    telemetry: Option<Arc<Telemetry>>,
    /// The lane time-series sampler thread (telemetry only).
    sampler: Option<JoinHandle<()>>,
    sampler_stop: Arc<AtomicBool>,
    /// The fleet energy coordinator thread (energy budgeting only).
    coordinator: Option<JoinHandle<()>>,
    coordinator_stop: Arc<AtomicBool>,
}

impl Server {
    /// Starts a server over `runtime`'s served tasks: one bounded lane
    /// per task, drained by [`ServerConfig::shards_per_task`] worker
    /// threads each owning a clone of the task runtime's engine (an
    /// `Arc` refcount bump on the shared weights — the same affinity
    /// contract as [`DeadlineScheduler`](crate::scheduler::DeadlineScheduler)).
    pub fn start(runtime: &MultiTaskRuntime, cfg: ServerConfig) -> Self {
        assert!(
            cfg.shards_per_task >= 1,
            "a lane needs at least one shard to drain it"
        );
        assert!(
            cfg.slack_floor_s.is_finite() && cfg.slack_floor_s >= 0.0,
            "slack floor must be finite and non-negative"
        );
        if let PreemptionPolicy::DeadlineGap(gap) = cfg.preemption {
            assert!(
                gap.is_finite() && gap >= 0.0,
                "preemption deadline gap must be finite and non-negative"
            );
        }
        if cfg.overload.enabled {
            cfg.overload.validate();
        }
        if cfg.elastic.enabled {
            assert!(
                cfg.elastic.grow_pressure.is_finite() && cfg.elastic.grow_pressure >= 0.0,
                "elastic grow pressure must be finite and non-negative"
            );
            assert!(
                cfg.elastic.idle_poll_s.is_finite() && cfg.elastic.idle_poll_s > 0.0,
                "elastic idle poll must be finite and positive"
            );
        }
        if let Some(ecfg) = &cfg.energy {
            ecfg.validate();
            let n_lanes = runtime.tasks().len() as f64;
            assert!(
                ecfg.floor_w * n_lanes <= ecfg.fleet_cap_w * (1.0 + 1e-9),
                "the per-lane energy floor times the lane count must fit \
                 the fleet cap: {} lanes x {} W > {} W",
                n_lanes,
                ecfg.floor_w,
                ecfg.fleet_cap_w
            );
        }
        let epoch = Instant::now();
        let telemetry = cfg
            .telemetry
            .map(|tcfg| Arc::new(Telemetry::new(tcfg, epoch)));
        let mut lanes = Vec::new();
        let mut pool = Vec::new();
        for task in runtime.tasks() {
            let rt = runtime.runtime(task).expect("task listed as served");
            let engine = rt.engine().clone();
            let lane = Arc::new(Lane::new(
                task,
                cfg.queue_capacity,
                cfg.policy,
                cfg.overload,
                cfg.shards_per_task,
                engine.nominal_service_estimate_s(),
                engine.default_latency_target_s(),
                telemetry.as_ref().map(|_| Arc::new(LaneTelemetry::new())),
            ));
            lanes.push(LaneEntry {
                default_target_s: engine.default_latency_target_s(),
                lane: Arc::clone(&lane),
                engine: engine.clone(),
            });
            pool.push(PoolEntry { lane, engine });
        }
        let registry = Arc::new(pool);
        let mut workers = Vec::new();
        for (home, entry) in registry.iter().enumerate() {
            let task = entry.lane.task;
            for shard in 0..cfg.shards_per_task {
                let registry = Arc::clone(&registry);
                let hub = telemetry.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("edgebert-{task}-{shard}"))
                    .spawn(move || shard_loop(registry, home, shard, cfg, epoch, hub))
                    .expect("spawn shard worker");
                workers.push(handle);
            }
        }
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let sampler = telemetry.as_ref().map(|hub| {
            let hub = Arc::clone(hub);
            let stop = Arc::clone(&sampler_stop);
            let lanes: Vec<Arc<Lane>> = registry.iter().map(|e| Arc::clone(&e.lane)).collect();
            let period = Duration::from_secs_f64(hub.config().sample_period_s);
            std::thread::Builder::new()
                .name("edgebert-telemetry-sampler".into())
                .spawn(move || sampler_loop(&lanes, &hub, &stop, period))
                .expect("spawn telemetry sampler")
        });
        let coordinator_stop = Arc::new(AtomicBool::new(false));
        let coordinator = cfg.energy.map(|ecfg| {
            let stop = Arc::clone(&coordinator_stop);
            let lanes: Vec<Arc<Lane>> = registry.iter().map(|e| Arc::clone(&e.lane)).collect();
            std::thread::Builder::new()
                .name("edgebert-energy-coordinator".into())
                .spawn(move || coordinator_loop(&lanes, ecfg, &stop))
                .expect("spawn energy coordinator")
        });
        Self {
            cfg,
            epoch,
            lanes,
            workers,
            telemetry,
            sampler,
            sampler_stop,
            coordinator,
            coordinator_stop,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The tasks this server admits.
    pub fn tasks(&self) -> Vec<Task> {
        self.lanes.iter().map(|entry| entry.lane.task).collect()
    }

    /// Requests admitted but not yet popped by a shard, across lanes.
    pub fn queued(&self) -> usize {
        self.lanes
            .iter()
            .map(|entry| entry.lane.queue.lock().expect("lane mutex").jobs.len())
            .sum()
    }

    /// Submits one request, returning a handle to its future response.
    ///
    /// Admission is non-blocking: an unknown task, a full lane, or a
    /// shutdown in progress refuse immediately with a typed
    /// [`SubmitError`] instead of silently dropping — callers decide
    /// whether to retry, reroute, or shed.
    pub fn submit(
        &self,
        task: Task,
        request: InferenceRequest,
    ) -> Result<ResponseHandle, SubmitError> {
        let entry = self
            .lanes
            .iter()
            .find(|entry| entry.lane.task == task)
            .ok_or(SubmitError::TaskNotServed(task))?;
        let target_s = request.latency_target_s.unwrap_or(entry.default_target_s);
        // The EDF key is the *remaining* budget: a request pre-stamped
        // with upstream queueing is closer to its deadline than a
        // fresh one with the same target. Requests come off the wire,
        // so a non-finite target must not poison the pop comparator —
        // it sorts last (and the engine flags it at serve time).
        let remaining_s = target_s - request.effective_elapsed_queue_s();
        let key_s = if remaining_s.is_finite() {
            remaining_s
        } else {
            f64::INFINITY
        };
        let (tx, rx) = sync_channel(1);
        let mut queue = entry.lane.queue.lock().expect("lane mutex");
        if queue.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        let lane = &entry.lane;
        // Foreign shards attached by elastic autoscaling drain the
        // lane too, so they count in the per-slot drain estimates
        // (always `lane.shards` with elasticity disabled).
        let effective_shards = (lane.shards + queue.extra_shards).max(1) as f64;
        let drain_slot_s = lane.nominal_service_s / effective_shards;
        if queue.jobs.len() >= lane.capacity {
            queue.rejected += 1;
            return Err(SubmitError::QueueFull {
                task,
                capacity: lane.capacity,
                depth: queue.jobs.len(),
                retry_after_hint_s: drain_slot_s,
            });
        }
        let now = Instant::now();
        let deadline_s = (now - self.epoch).as_secs_f64() + key_s;
        if self.cfg.overload.enabled {
            // Advance the ladder on the pre-admission backlog; on the
            // shed rung, refuse work whose remaining budget the
            // backlog ahead of it would already consume — it would
            // queue and die, and its queueing would push feasible work
            // past its own deadline too.
            let step = lane.observe(&mut queue);
            if step == LadderStep::Shed {
                let ahead = match self.cfg.policy {
                    // EDF: only work with an equal-or-tighter deadline
                    // runs before this request.
                    SchedulePolicy::EarliestDeadline => queue
                        .jobs
                        .iter()
                        .map(|j| j.deadline_s)
                        .chain(queue.parked.iter().map(|p| p.ctx.deadline_s))
                        .filter(|&d| d <= deadline_s)
                        .count(),
                    // FIFO: everything already queued runs first.
                    SchedulePolicy::Fifo => queue.jobs.len() + queue.parked.len(),
                };
                // The feasibility test divides the backlog over the
                // *observed* degraded service time once the ladder's
                // Degrade rung has bought real throughput (clamped by
                // the nominal estimate, so it only ever sheds less).
                // analyzer: allow(nested-lock) reason="queue -> tally is the one sanctioned lock order: the tally mutex is a leaf lock held for a few loads inside shed_service_estimate_s and never taken around any other lock"
                let mut shed_slot_s = lane.shed_service_estimate_s() / effective_shards;
                // An energy envelope slows every slot: the feasibility
                // test must price the lane's *allowed* speed, not the
                // nominal one, or the shed rung under-sheds and queued
                // work dies at the capped clock. A no-op (scale 1.0)
                // when the envelope admits the nominal point or the
                // backend doesn't model power.
                if let Some(w) = queue.envelope_w {
                    let per_shard_w = w / effective_shards;
                    shed_slot_s *= entry.engine.backend().envelope_service_scale(per_shard_w);
                }
                let backlog_s = (ahead + 1) as f64 * shed_slot_s;
                // Per-class preference: on the shed rung, arrivals
                // with a loose remaining budget (≥ ratio × the lane's
                // deadline horizon) are shed first, regardless of
                // feasibility — they tolerate a retry far better than
                // tight-class work tolerates the queueing they cause.
                // INFINITY (the default) disables the preference; the
                // finite guard keeps infinite-budget requests from
                // matching an infinite cut.
                let loose_cut_s = self.cfg.overload.shed_loose_budget_ratio * lane.horizon_s;
                let loose = loose_cut_s.is_finite() && key_s >= loose_cut_s;
                // Negated so an infinite budget always admits and a
                // NaN budget (sanitized upstream, but cheap to be
                // safe) sheds rather than queues-and-dies.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let infeasible = !(key_s >= backlog_s);
                if loose || infeasible {
                    queue.shed += 1;
                    let p = lane.pressure_of(&queue);
                    if let Some(hub) = &self.telemetry {
                        // Shed requests never consume a submission
                        // sequence number (numbering stays identical
                        // with telemetry off), so their trace ids
                        // count down from the top instead.
                        hub.record_at(
                            (now - self.epoch).as_secs_f64(),
                            task,
                            u64::MAX - (queue.shed - 1),
                            TraceEventKind::Shed { pressure: p },
                        );
                    }
                    let retry_after_hint_s = if infeasible {
                        (backlog_s - key_s).max(shed_slot_s)
                    } else {
                        // Feasible but loose: a slot should free once
                        // the backlog ahead drains.
                        backlog_s.max(shed_slot_s)
                    };
                    return Err(SubmitError::Shed {
                        task,
                        pressure: p,
                        retry_after_hint_s,
                    });
                }
            }
        }
        let submission = queue.next_seq;
        queue.next_seq += 1;
        queue.submitted += 1;
        queue.jobs.push(Job {
            seq: submission,
            deadline_s,
            enqueued_at: now,
            request,
            reply: tx,
        });
        queue.high_water = queue.high_water.max(queue.jobs.len());
        if let Some(hub) = &self.telemetry {
            // Emitted while the queue lock pins the pop: the worker
            // cannot record `Popped` before `Admitted` lands.
            hub.record_at(
                (now - self.epoch).as_secs_f64(),
                task,
                submission,
                TraceEventKind::Admitted,
            );
        }
        drop(queue);
        entry.lane.available.notify_one();
        Ok(ResponseHandle {
            task,
            submission,
            rx,
        })
    }

    /// A snapshot of the per-lane counters.
    pub fn stats(&self) -> ServerStats {
        let lanes = self
            .lanes
            .iter()
            .map(|entry| {
                // Leaf locks first: the histogram snapshot and the tally
                // copy each take (and release) their own lock before the
                // queue guard is acquired, so the snapshot path never
                // holds two lane locks at once.
                let histograms = entry.lane.telemetry.as_ref().map(|lt| lt.snapshot());
                let tally = *entry.lane.tally_lock();
                let served = tally.served.max(1) as f64;
                let queue = entry.lane.queue.lock().expect("lane mutex");
                LaneStats {
                    task: entry.lane.task,
                    shards: self.cfg.shards_per_task,
                    submitted: queue.submitted,
                    rejected: queue.rejected,
                    shed: queue.shed,
                    degraded: tally.degraded,
                    ladder_step_changes: queue.controller.step_changes(),
                    served: tally.served,
                    violations: tally.violations,
                    preempted: tally.preempted,
                    resumed: tally.resumed,
                    stolen: tally.stolen,
                    migrated: tally.migrated,
                    pool_resizes: queue.pool_resizes,
                    attach_declined: queue.attach_declined,
                    energy_j: tally.energy_j_total,
                    queued: queue.jobs.len(),
                    parked: queue.parked.len(),
                    queue_high_water: queue.high_water,
                    max_parked_depth: queue.parked_high_water,
                    queue_delay_mean_s: tally.queue_delay_total_s / served,
                    queue_delay_max_s: tally.queue_delay_max_s,
                    slack_deducted_mean_s: tally.slack_deducted_total_s / served,
                    histograms,
                }
            })
            .collect();
        ServerStats::from_lanes(lanes)
    }

    /// Everything the telemetry subsystem recorded so far: trace
    /// events, per-lane histograms, lane time-series, and drop
    /// counters. `None` when [`ServerConfig::telemetry`] is off. Can be
    /// taken at any time; for a complete trace of a finished load, use
    /// [`shutdown_with_telemetry`](Self::shutdown_with_telemetry).
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let hub = self.telemetry.as_ref()?;
        let (events, dropped_events) = hub.trace_snapshot();
        let (samples, dropped_samples) = hub.series_snapshot();
        let lanes = self
            .lanes
            .iter()
            .filter_map(|entry| {
                entry
                    .lane
                    .telemetry
                    .as_ref()
                    .map(|lt| LaneTelemetrySnapshot {
                        task: entry.lane.task,
                        histograms: lt.snapshot(),
                    })
            })
            .collect();
        Some(TelemetrySnapshot {
            events,
            dropped_events,
            lanes,
            samples,
            dropped_samples,
        })
    }

    /// Gracefully shuts down: admission closes, every already-admitted
    /// request is served, shard workers exit, and the final stats
    /// snapshot is returned. Outstanding [`ResponseHandle`]s stay
    /// valid — their responses were delivered during the drain.
    pub fn shutdown(mut self) -> ServerStats {
        self.close_and_join();
        self.stats()
    }

    /// [`shutdown`](Self::shutdown), additionally returning the final
    /// telemetry snapshot (taken *after* the drain, so every served
    /// request's span chain is complete). The snapshot is `None` when
    /// telemetry is off.
    pub fn shutdown_with_telemetry(mut self) -> (ServerStats, Option<TelemetrySnapshot>) {
        self.close_and_join();
        (self.stats(), self.telemetry_snapshot())
    }

    fn close_and_join(&mut self) {
        for entry in &self.lanes {
            entry.lane.queue.lock().expect("lane mutex").shutting_down = true;
            entry.lane.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("shard worker exits cleanly");
        }
        self.sampler_stop.store(true, Ordering::Relaxed);
        if let Some(sampler) = self.sampler.take() {
            sampler.join().expect("telemetry sampler exits cleanly");
        }
        self.coordinator_stop.store(true, Ordering::Relaxed);
        if let Some(coordinator) = self.coordinator.take() {
            coordinator
                .join()
                .expect("energy coordinator exits cleanly");
        }
    }
}

/// The lane time-series sampler: every `period`, snapshot each lane's
/// control state `(pressure, rung, queued, parked, extra_shards)` —
/// plus its energy envelope and measured power draw when the fleet
/// coordinator is running — into the hub's series ring. One short queue-lock hold per lane per tick;
/// shutdown latency is bounded by sleeping in small slices.
// analyzer: worker-loop
fn sampler_loop(
    lanes: &[Arc<Lane>],
    hub: &Arc<Telemetry>,
    stop: &Arc<AtomicBool>,
    period: Duration,
) {
    let slice = period.min(Duration::from_millis(20));
    while !stop.load(Ordering::Relaxed) {
        for lane in lanes {
            // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so crashing the observer beats sampling garbage"
            let queue = lane.queue.lock().expect("lane mutex");
            let sample = LaneSample {
                t_s: hub.now_s(),
                task: lane.task,
                pressure: lane.pressure_of(&queue),
                rung: queue.controller.step(),
                queued: queue.jobs.len(),
                parked: queue.parked.len(),
                extra_shards: queue.extra_shards,
                envelope_w: queue.envelope_w,
                power_w: queue.measured_power_w,
            };
            drop(queue);
            hub.sample(sample);
        }
        let mut slept = Duration::ZERO;
        while slept < period && !stop.load(Ordering::Relaxed) {
            let nap = slice.min(period - slept);
            std::thread::sleep(nap);
            slept += nap;
        }
    }
}

/// The fleet energy coordinator: allocate envelopes immediately at
/// startup (no power measured yet → an even pressure-free split, so
/// pop-time stamping and attach feasibility never see a budgeted lane
/// without an envelope), then every update period difference each
/// lane's cumulative served energy into its measured-power EWMA and
/// re-waterfill the cap toward queue pressure. Each tick holds one
/// short tally copy and one short queue-lock write per lane; shutdown
/// latency is bounded by sleeping in small slices.
// analyzer: worker-loop
fn coordinator_loop(lanes: &[Arc<Lane>], ecfg: EnergyConfig, stop: &Arc<AtomicBool>) {
    let period = Duration::from_secs_f64(ecfg.update_period_s);
    let slice = period.min(Duration::from_millis(20));
    let tasks: Vec<Task> = lanes.iter().map(|lane| lane.task).collect();
    let mut coordinator = FleetCoordinator::new(ecfg, &tasks);
    let mut last_tick = Instant::now();
    loop {
        let dt_s = last_tick.elapsed().as_secs_f64();
        last_tick = Instant::now();
        let observed: Vec<LaneObservation> = lanes
            .iter()
            .map(|lane| {
                // The tally mutex is a leaf lock: copy the cumulative
                // energy and release before touching the queue lock.
                let energy_j_total = lane.tally_lock().energy_j_total;
                // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so the coordinator must not publish envelopes derived from it"
                let queue = lane.queue.lock().expect("lane mutex");
                LaneObservation {
                    task: lane.task,
                    energy_j_total,
                    pressure: lane.pressure_of(&queue),
                }
            })
            .collect();
        let allocations = coordinator.tick(dt_s, &observed);
        for alloc in &allocations {
            let Some(lane) = lanes.iter().find(|lane| lane.task == alloc.task) else {
                continue;
            };
            // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so the coordinator must not write envelopes into it"
            let mut queue = lane.queue.lock().expect("lane mutex");
            queue.envelope_w = Some(alloc.envelope_w);
            queue.measured_power_w = Some(alloc.measured_w);
        }
        let mut slept = Duration::ZERO;
        while slept < period && !stop.load(Ordering::Relaxed) {
            let nap = slice.min(period - slept);
            std::thread::sleep(nap);
            slept += nap;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
    }
}

impl Drop for Server {
    /// Dropping the server performs the same graceful drain as
    /// [`shutdown`](Self::shutdown).
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// One shard worker's entry point: the static loop with elasticity
/// disabled (the default — the shard drains only its home lane,
/// bit-identical to the pre-elastic server), the roaming elastic loop
/// otherwise.
fn shard_loop(
    registry: Arc<Vec<PoolEntry>>,
    home: usize,
    shard: usize,
    cfg: ServerConfig,
    epoch: Instant,
    telemetry: Option<Arc<Telemetry>>,
) {
    if cfg.elastic.enabled {
        elastic_shard_loop(&registry, home, shard, cfg, epoch, telemetry.as_ref());
    } else {
        static_shard_loop(&registry[home], shard, cfg, epoch, telemetry.as_ref());
    }
}

/// The pinned worker loop: pick the home lane's next unit of work
/// (fresh admission or parked session) in policy order, materialize it
/// into a running session, and drive it until it completes or yields
/// the lane.
// analyzer: worker-loop
fn static_shard_loop(
    entry: &PoolEntry,
    shard: usize,
    cfg: ServerConfig,
    epoch: Instant,
    telemetry: Option<&Arc<Telemetry>>,
) {
    // The cap a popped job's stretch window is clamped under when
    // tighter work waits behind it: the successor must still fit a
    // nominal-speed sentence inside its own deadline. Pop-time capping
    // only makes sense when this worker *is* the lane — with several
    // shards the queued successor typically dispatches concurrently on
    // another one, and capping would spend energy with no tail win.
    let pressure_stretch = cfg.pressure_stretch && cfg.shards_per_task == 1;
    // A preemption exchange hands this shard the claimed tight job
    // directly, bypassing the queue.
    let mut claimed: Option<Popped> = None;
    loop {
        let popped = match claimed.take() {
            Some(popped) => popped,
            None => match entry.lane.next_work() {
                Some(popped) => popped,
                None => return,
            },
        };
        let (session, ctx) = materialize(
            entry,
            popped,
            &cfg,
            epoch,
            pressure_stretch,
            telemetry,
            None,
        );
        claimed = drive(&entry.lane, session, ctx, shard, cfg);
    }
}

/// The roaming worker loop: drain the home lane first, then steal the
/// EDF-tightest parked session from any foreign lane, then attach to
/// the most pressured foreign lane as an extra shard. Foreign work is
/// served through the foreign lane's own engine and accounted on the
/// foreign lane's tallies (plus the stolen/migrated counters); the
/// shard detaches once the foreign work is done.
// analyzer: worker-loop
fn elastic_shard_loop(
    registry: &[PoolEntry],
    home: usize,
    shard: usize,
    cfg: ServerConfig,
    epoch: Instant,
    telemetry: Option<&Arc<Telemetry>>,
) {
    let idle_poll = Duration::from_secs_f64(cfg.elastic.idle_poll_s);
    // A preemption exchange hands this shard the claimed tight job of
    // the lane it is currently serving, bypassing that lane's queue.
    let mut claimed: Option<(usize, Popped)> = None;
    loop {
        let (idx, popped) = match claimed.take() {
            Some(next) => next,
            None => match next_elastic_work(registry, home, &cfg.elastic, idle_poll) {
                Some(next) => next,
                None => return,
            },
        };
        let entry = &registry[idx];
        let stolen = idx != home && matches!(popped.work, Work::Resume(_));
        if stolen {
            // A parked session crossing lanes: migrated on its origin
            // lane, stolen on the thief's home lane. Both tallies are
            // locked together, in global lane-index order (tally
            // mutexes are leaf locks — never held while taking any
            // other lock — so the ordered pair cannot deadlock), which
            // makes the pair of increments atomic: `stolen ==
            // migrated` server-wide holds at every instant, and
            // `ServerStats::from_lanes` asserts it on every snapshot.
            let (lo, hi) = (idx.min(home), idx.max(home));
            // analyzer: allow(nested-lock) reason="ordered leaf-lock pair: tally mutexes are taken in global lane-index order and never held across any other lock"
            let lo_tally = registry[lo].lane.tally_lock();
            // analyzer: allow(nested-lock) reason="second half of the ordered leaf-lock pair above; lane-index order makes the pair deadlock-free"
            let hi_tally = registry[hi].lane.tally_lock();
            let (mut origin, mut thief) = if idx < home {
                (lo_tally, hi_tally)
            } else {
                (hi_tally, lo_tally)
            };
            origin.migrated += 1;
            thief.stolen += 1;
        }
        let thief_lane = if stolen {
            Some(registry[home].lane.task)
        } else {
            None
        };
        // Pressure stretch is forced off under elasticity: pop-time
        // capping assumes the popping worker is the lane's only drain,
        // and a pool that grows and steals breaks that premise.
        let (session, ctx) = materialize(entry, popped, &cfg, epoch, false, telemetry, thief_lane);
        match drive(&entry.lane, session, ctx, shard, cfg) {
            Some(next) => claimed = Some((idx, next)),
            None => {
                if idx != home {
                    entry.lane.detach();
                }
            }
        }
    }
}

/// Picks the next unit of work for an elastic shard, blocking until
/// one exists or the home lane shuts down empty (`None`). Home work
/// wins outright (a shard never starves its own task); foreign lanes
/// are consulted only when the home lane is idle, and any foreign pop
/// attaches the shard to that lane first so the pressure signal and
/// admission estimates see the grown pool.
// analyzer: worker-loop
fn next_elastic_work(
    registry: &[PoolEntry],
    home: usize,
    el: &ElasticConfig,
    idle_poll: Duration,
) -> Option<(usize, Popped)> {
    loop {
        if let Some(popped) = registry[home].lane.try_next_work() {
            return Some((home, popped));
        }
        if el.work_stealing {
            if let Some(found) = steal_tightest_parked(registry, home) {
                return Some(found);
            }
        }
        if el.autoscale {
            if let Some(found) = attach_to_pressured_lane(registry, home, el.grow_pressure) {
                return Some(found);
            }
        }
        // Nothing anywhere: wait on the home condvar with a timeout —
        // home admissions wake the shard immediately, and the timed
        // poll bounds how long freshly pressured *foreign* lanes (which
        // signal their own condvars, not this one) can go unnoticed.
        // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so the worker must not drain past it"
        let queue = registry[home].lane.queue.lock().expect("lane mutex");
        if queue.shutting_down && queue.jobs.is_empty() && queue.parked.is_empty() {
            // Foreign lanes still draining are their own shards'
            // responsibility; exiting here is what lets shutdown join
            // every worker.
            return None;
        }
        let _ = registry[home]
            .lane
            .available
            .wait_timeout(queue, idle_poll)
            .expect("lane mutex");
    }
}

/// Finds and claims the EDF-tightest parked session across all foreign
/// lanes. Scans one queue lock at a time (two lane locks are never
/// held together), then re-locks the winner to steal — tolerating the
/// race where another shard got there first (`None`; the caller's loop
/// rescans).
// analyzer: worker-loop
fn steal_tightest_parked(registry: &[PoolEntry], home: usize) -> Option<(usize, Popped)> {
    let mut best: Option<(usize, (f64, u64))> = None;
    for (idx, entry) in registry.iter().enumerate() {
        if idx == home {
            continue;
        }
        // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so the worker must not drain past it"
        let queue = entry.lane.queue.lock().expect("lane mutex");
        for parked in &queue.parked {
            let key = (parked.ctx.deadline_s, parked.ctx.seq);
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((idx, key));
            }
        }
    }
    let (idx, (_, seq)) = best?;
    let entry = &registry[idx];
    // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so the worker must not drain past it"
    let mut queue = entry.lane.queue.lock().expect("lane mutex");
    let at = queue.parked.iter().position(|p| p.ctx.seq == seq)?;
    let parked = queue.parked.remove(at);
    entry.lane.attach(&mut queue);
    let popped = entry
        .lane
        .finish_foreign_pop(&mut queue, Work::Resume(Box::new(parked)));
    Some((idx, popped))
}

/// Finds the most pressured foreign lane with work waiting whose
/// pressure clears the grow threshold, attaches to it, and pops its
/// next unit of work (fresh or parked, in the lane's own policy
/// order). Same two-pass, one-lock-at-a-time discipline as stealing.
///
/// Energy envelopes gate the growth: an extra shard is one more
/// accelerator that must draw at least the backend's floor power, so a
/// lane whose envelope cannot fund `shards + extras + 1` floor-power
/// draws *declines* the attach (counted in
/// [`LaneStats::attach_declined`]) rather than blowing through the
/// fleet cap — the lane stays pressured and drains at its funded
/// width. Lanes without an envelope, and backends that don't model
/// power (an infinite floor means "unmodeled", not "unaffordable"),
/// attach exactly as before.
// analyzer: worker-loop
fn attach_to_pressured_lane(
    registry: &[PoolEntry],
    home: usize,
    grow_pressure: f64,
) -> Option<(usize, Popped)> {
    let envelope_funds_another_shard = |entry: &PoolEntry, queue: &lane::LaneQueue| {
        let Some(w) = queue.envelope_w else {
            return true;
        };
        let floor_w = entry.engine.backend().floor_power_w();
        !floor_w.is_finite() || w >= (entry.lane.shards + queue.extra_shards + 1) as f64 * floor_w
    };
    let mut best: Option<(usize, f64)> = None;
    for (idx, entry) in registry.iter().enumerate() {
        if idx == home {
            continue;
        }
        // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so the worker must not drain past it"
        let mut queue = entry.lane.queue.lock().expect("lane mutex");
        if queue.jobs.is_empty() && queue.parked.is_empty() {
            continue;
        }
        let p = entry.lane.pressure_of(&queue);
        if p < grow_pressure {
            continue;
        }
        if !envelope_funds_another_shard(entry, &queue) {
            queue.attach_declined += 1;
            continue;
        }
        if best.is_none_or(|(_, bp)| p > bp) {
            best = Some((idx, p));
        }
    }
    let (idx, _) = best?;
    let entry = &registry[idx];
    // analyzer: allow(lock-unwrap-in-loop) reason="queue mutex keeps panic-on-poison by policy: a torn LaneQueue can break one-response-per-submission, so the worker must not drain past it"
    let mut queue = entry.lane.queue.lock().expect("lane mutex");
    // The envelope may have shrunk between the scan and the claim:
    // re-judge under the lock that commits the attach.
    if !envelope_funds_another_shard(entry, &queue) {
        queue.attach_declined += 1;
        return None;
    }
    let work = entry.lane.take_work(&mut queue)?;
    entry.lane.attach(&mut queue);
    let popped = entry.lane.finish_foreign_pop(&mut queue, work);
    Some((idx, popped))
}

/// Turns a popped unit of work into a running session plus its serving
/// context: a fresh admission measures its wait and stamps slack (and
/// any queue-pressure stretch cap) before the engine opens the
/// session; a parked session resumes, charging its parked wall time.
/// `telemetry`/`thief_lane` are observation-only: a fresh pop emits
/// `Popped` (and `Degraded` when the ladder bit) and attaches the
/// request's span recorder to the session; a resume emits `Resumed`,
/// attributing the thief's home lane when the session crossed lanes.
// analyzer: worker-loop
#[allow(clippy::too_many_arguments)]
fn materialize(
    entry: &PoolEntry,
    popped: Popped,
    cfg: &ServerConfig,
    epoch: Instant,
    pressure_stretch: bool,
    telemetry: Option<&Arc<Telemetry>>,
    thief_lane: Option<Task>,
) -> (InferenceSession, JobContext) {
    match popped.work {
        Work::Fresh(job) => {
            let queue_delay_s = job.enqueued_at.elapsed().as_secs_f64();
            // Any pre-stamp from the submitter (an upstream hop's
            // measured wait) counts toward the total elapsed queue
            // time.
            let pre_stamp_s = job.request.effective_elapsed_queue_s();
            let elapsed_s = pre_stamp_s + queue_delay_s;
            // Elapsed queue time the engine's DVFS budget is
            // charged with. The engine always honors the stamp a
            // request carries — "slack-blind" means the *server*
            // adds none of its own measured wait on top, not that
            // a submitter's stamp is erased. The noise floor gates
            // the *measured* wait alone: a request pre-stamped
            // above the floor must not have sub-floor wake-up
            // jitter folded into its budget either.
            let budgeted_s = if cfg.queue_aware_slack && queue_delay_s >= cfg.slack_floor_s {
                elapsed_s
            } else {
                pre_stamp_s
            };
            let mut request = job.request;
            if budgeted_s > pre_stamp_s {
                // Server-side deduction; otherwise the request is
                // served exactly as submitted, bit-identical to
                // `TaskRuntime::serve`.
                request = request.with_elapsed_queue_s(budgeted_s);
            }
            if pressure_stretch {
                if let Some(successor_deadline_s) = popped.successor_deadline_s {
                    let now_s = epoch.elapsed().as_secs_f64();
                    let cap_s = successor_deadline_s - now_s - entry.lane.nominal_service_s;
                    if cap_s.is_finite() {
                        request = request.with_stretch_cap_s(cap_s.max(0.0));
                    }
                }
            }
            // The lane's per-shard energy allowance at pop time rides
            // the request into the engine: every DVFS decision this
            // sentence makes is clamped under it, while the deadline
            // verdict keeps judging the real target (`None` without a
            // coordinator — the exact pre-energy path).
            if let Some(w) = popped.envelope_w {
                request = request.with_envelope_w(w);
            }
            // The verdict charges exactly the elapsed time the
            // server accounted for. In queue-aware mode a
            // sub-floor wait was declared measurement noise and
            // not deducted from the DVFS budget, so it must not
            // flip the verdict either — otherwise an *idle* server
            // would mark every sentence whose compute stretches
            // exactly onto its target as missed, on microseconds
            // of wake-up jitter. The slack-blind baseline charges
            // the full measured wait: not accounting for queueing
            // is precisely the failure it exists to demonstrate.
            let charged_elapsed_s = if cfg.queue_aware_slack {
                budgeted_s
            } else {
                elapsed_s
            };
            // The overload ladder's rung at pop time sizes this
            // sentence's degradation, clamped to the request's own
            // floor. NONE (disabled ladder, nominal rung, or a
            // zero floor) takes the exact `begin` path.
            let degradation = cfg
                .overload
                .degradation_for(popped.ladder_step, request.max_degradation);
            let mut session = entry.engine.begin_degraded(&request, degradation);
            if let Some(hub) = telemetry {
                let recorder = hub.recorder(entry.lane.task, job.seq);
                recorder.emit(TraceEventKind::Popped { queue_delay_s });
                if degradation.tier_notches > 0 {
                    recorder.emit(TraceEventKind::Degraded {
                        notches: degradation.tier_notches,
                    });
                }
                session.attach_trace(recorder);
            }
            if let Some(lt) = &entry.lane.telemetry {
                lt.observe_queue_delay(queue_delay_s);
            }
            (
                session,
                JobContext {
                    seq: job.seq,
                    deadline_s: job.deadline_s,
                    reply: job.reply,
                    queue_delay_s,
                    slack_deducted_s: budgeted_s,
                    elapsed_s,
                    charged_elapsed_s,
                },
            )
        }
        Work::Resume(parked) => {
            let parked = *parked;
            let mut session = parked.session;
            // The parked wall time burned real slack: the next
            // DVFS decision sees it, and so does the verdict.
            session.resume(parked.parked_at.elapsed().as_secs_f64());
            if let Some(recorder) = session.trace() {
                recorder.emit(TraceEventKind::Resumed { thief_lane });
            }
            entry.lane.tally_lock().resumed += 1;
            (session, parked.ctx)
        }
    }
}

/// Steps one session until it completes or yields the lane. Completion
/// delivers the response and folds the tallies, returning `None`; a
/// preemption exchange parks the session (with its serving context)
/// onto the lane and returns the claimed tight job for the shard to
/// serve next.
// analyzer: worker-loop
fn drive(
    lane: &Arc<Lane>,
    mut session: InferenceSession,
    mut ctx: JobContext,
    shard: usize,
    cfg: ServerConfig,
) -> Option<Popped> {
    let segment_started = Instant::now();
    let resume_base_s = session.modeled_latency_s();
    // Emulation granularity follows the preemption policy: preemptive
    // lanes must be really busy for each layer's modeled time so a
    // boundary exists mid-service to park at, while non-preemptive
    // lanes sleep once per dispatch — per-step sleeps would stack one
    // scheduler-quantum overshoot per layer onto sentences that land
    // exactly on their deadlines by design.
    let per_step_emulation = cfg.preemption != PreemptionPolicy::Off;
    let emulate_to_accrued = |session: &InferenceSession| {
        // Hold the lane for the modeled hardware latency accrued so
        // far in this dispatch. The software forward pass already
        // consumed real time, so only the remainder is slept — lane
        // busy time is the modeled service time, not the sum of both.
        let due_s = session.modeled_latency_s() - resume_base_s;
        let spent_s = segment_started.elapsed().as_secs_f64();
        std::thread::sleep(Duration::from_secs_f64((due_s - spent_s).clamp(0.0, 10.0)));
    };
    loop {
        if let Some(lt) = &lane.telemetry {
            let step_started = Instant::now();
            session.step();
            lt.observe_step(step_started.elapsed().as_secs_f64());
        } else {
            session.step();
        }
        if cfg.emulate_service_time && per_step_emulation {
            emulate_to_accrued(&session);
        }
        if session.is_complete() {
            if cfg.emulate_service_time && !per_step_emulation {
                emulate_to_accrued(&session);
            }
            break;
        }
        // Between layer steps: yield the lane if a strictly tighter
        // arrival is queued. The cheap poll runs lock-light; the
        // authoritative decision is the atomic exchange, which parks
        // this session at the layer boundary — hidden state and
        // committed cost checkpointed — and claims the tight job for
        // this shard in the same lock, so a pool of shards can never
        // stampede-park for one arrival.
        if cfg.preemption != PreemptionPolicy::Off {
            let pressured = lane
                .tightest_queued_deadline()
                .is_some_and(|queued| cfg.preemption.should_preempt(ctx.deadline_s, queued));
            if pressured {
                match lane.preempt_exchange(session, ctx, cfg.preemption) {
                    Ok(claimed) => {
                        lane.tally_lock().preempted += 1;
                        return Some(claimed);
                    }
                    // Pressure vanished between the poll and the lock
                    // (another shard claimed the arrival): nothing was
                    // parked or charged — keep stepping.
                    Err(back) => {
                        (session, ctx) = *back;
                    }
                }
            }
        }
    }
    let preemptions = session.preemptions();
    let parked_s = session.parked_s();
    let degraded_notches = session.degraded_notches();
    let response = session
        .response()
        .expect("a completed session carries its response");
    // Parked time is real elapsed time the sentence spent not
    // computing: it counts in the sojourn and against the deadline in
    // both slack modes, exactly as the session's own accounting saw it.
    let sojourn_s = ctx.elapsed_s + parked_s + response.result.latency_s;
    let met = deadline_met(
        ctx.charged_elapsed_s + parked_s + response.result.latency_s,
        response.latency_target_s,
    );
    let energy_j = response.result.energy_j;
    if let Some(recorder) = session.trace() {
        recorder.emit(TraceEventKind::Completed {
            verdict: met,
            energy_j,
        });
    }
    if let Some(lt) = &lane.telemetry {
        lt.observe_completion(sojourn_s, response.result.energy_j);
    }
    {
        let mut tally = lane.tally_lock();
        tally.served += 1;
        if !met {
            tally.violations += 1;
        }
        // The cumulative energy ledger the fleet coordinator
        // differences into this lane's measured power draw.
        tally.energy_j_total += energy_j;
        tally.queue_delay_total_s += ctx.queue_delay_s;
        tally.queue_delay_max_s = tally.queue_delay_max_s.max(ctx.queue_delay_s);
        tally.slack_deducted_total_s += ctx.slack_deducted_s;
        if degraded_notches > 0 {
            tally.degraded += 1;
            // Feeds the lane's observed degraded service estimate,
            // which the shed feasibility test prefers over the
            // pessimistic nominal one.
            tally.degraded_modeled_total_s += response.result.latency_s;
        }
    }
    // The client may have stopped waiting; a dead handle is not a
    // server error.
    let _ = ctx.reply.send(ServerResponse {
        task: lane.task,
        shard,
        submission: ctx.seq,
        response,
        queue_delay_s: ctx.queue_delay_s,
        slack_deducted_s: ctx.slack_deducted_s,
        preemptions,
        parked_s,
        degraded_notches,
        sojourn_s,
        deadline_met: met,
        energy_j,
    });
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::SweepCache;
    use crate::engine::{EngineBuilder, EntropyThresholds};
    use crate::predictor::EntropyPredictor;
    use crate::serving::TaskRuntime;
    use edgebert_model::{AlbertConfig, AlbertModel};
    use edgebert_tasks::{Dataset, TaskGenerator, VocabLayout};
    use edgebert_tensor::Rng;

    fn fixture_runtime() -> (MultiTaskRuntime, Dataset) {
        let layout = VocabLayout::standard();
        let cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
        let mut rng = Rng::seed_from(23);
        let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
        let gen = TaskGenerator::standard(Task::Sst2, cfg.max_seq_len);
        let data = gen.generate(16, 7);
        let cache = SweepCache::build(&model, &data);
        let pred = EntropyPredictor::train(&cache.entropy_dataset(), 40, 3);
        let lut = pred.to_lut(32, 1.1);
        let builder = EngineBuilder::new(Arc::new(model), Arc::new(lut))
            .uniform_thresholds(EntropyThresholds::uniform(0.3))
            .latency_target(60e-3);
        let rt = TaskRuntime::from_builder(Task::Sst2, builder);
        (MultiTaskRuntime::from_runtimes([rt]), data)
    }

    fn blind_config() -> ServerConfig {
        ServerConfig {
            queue_aware_slack: false,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn unknown_task_is_a_typed_routing_error() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        let req = InferenceRequest::new(data.examples()[0].tokens.clone());
        assert!(matches!(
            server.submit(Task::Mnli, req),
            Err(SubmitError::TaskNotServed(Task::Mnli))
        ));
        assert_eq!(server.tasks(), vec![Task::Sst2]);
    }

    #[test]
    fn zero_capacity_lane_exerts_deterministic_backpressure() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(
            &rt,
            ServerConfig {
                queue_capacity: 0,
                ..blind_config()
            },
        );
        for _ in 0..3 {
            let req = InferenceRequest::new(data.examples()[0].tokens.clone());
            match server.submit(Task::Sst2, req) {
                Err(SubmitError::QueueFull {
                    task: Task::Sst2,
                    capacity: 0,
                    depth: 0,
                    retry_after_hint_s,
                }) => assert!(retry_after_hint_s > 0.0),
                other => panic!("expected QueueFull, got {other:?}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected(), 3);
        assert_eq!(stats.submitted(), 0);
        assert_eq!(stats.served(), 0);
    }

    #[test]
    fn slack_blind_responses_are_bit_identical_to_direct_serve() {
        let (rt, data) = fixture_runtime();
        let engine = rt.runtime(Task::Sst2).expect("served").engine().clone();
        let server = Server::start(
            &rt,
            ServerConfig {
                shards_per_task: 2,
                ..blind_config()
            },
        );
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for (i, ex) in data.iter().enumerate() {
            let req = InferenceRequest::new(ex.tokens.clone())
                .with_latency_target(20e-3 + 5e-3 * i as f64);
            expected.push(engine.serve(&req));
            handles.push(server.submit(Task::Sst2, req).expect("admitted"));
        }
        for (handle, want) in handles.into_iter().zip(expected) {
            let got = handle.wait().expect("worker alive");
            assert_eq!(got.response, want);
            assert_eq!(got.slack_deducted_s, 0.0);
            assert_eq!(got.task, Task::Sst2);
            assert!(got.shard < 2);
            assert!(got.queue_delay_s >= 0.0);
            assert_eq!(
                got.deadline_met,
                deadline_met(got.sojourn_s, got.response.latency_target_s)
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.served(), data.len() as u64);
        assert_eq!(stats.violations(), {
            // recomputable from the lane snapshot
            stats.lane(Task::Sst2).expect("lane").violations
        });
    }

    #[test]
    fn non_finite_wire_targets_do_not_poison_the_lane() {
        // Regression: a NaN latency target off the wire used to panic
        // the EDF pop comparator inside a shard worker, poisoning the
        // lane mutex and aborting the process on Drop. Garbage targets
        // now sort last and are flagged infeasible by the engine.
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        let mut handles = Vec::new();
        for (i, bad) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
            .into_iter()
            .enumerate()
        {
            let req =
                InferenceRequest::new(data.examples()[i].tokens.clone()).with_latency_target(bad);
            handles.push(server.submit(Task::Sst2, req).expect("admitted"));
        }
        // A sane request rides along and must be served normally.
        let sane = server
            .submit(
                Task::Sst2,
                InferenceRequest::new(data.examples()[3].tokens.clone()).with_latency_target(50e-3),
            )
            .expect("admitted");
        assert_eq!(
            sane.wait().expect("worker alive").response.latency_target_s,
            50e-3
        );
        for handle in handles {
            handle.wait().expect("delivered, not lost");
        }
        let stats = server.shutdown();
        assert_eq!(stats.served(), 4);
    }

    #[test]
    fn idle_queue_aware_server_does_not_charge_wakeup_jitter() {
        // Regression: a sentence whose DVFS stretches compute exactly
        // onto its target used to be judged "missed" on an idle
        // queue-aware server, because the microseconds of worker
        // wake-up jitter — deliberately below the slack floor and NOT
        // deducted from the budget — were still charged to the sojourn
        // verdict. Sub-floor waits stay out of both.
        let (rt, data) = fixture_runtime();
        let strict = TaskRuntime::from_builder(
            Task::Sst2,
            rt.runtime(Task::Sst2)
                .expect("served")
                .builder()
                .uniform_thresholds(EntropyThresholds::uniform(0.0)),
        );
        let tokens = data.examples()[0].tokens.clone();
        let direct = strict
            .engine()
            .serve(&InferenceRequest::new(tokens.clone()).with_latency_target(60e-3));
        assert!(
            direct.result.deadline_met && direct.result.latency_s > 50e-3,
            "fixture must stretch compute onto the target ({} s)",
            direct.result.latency_s
        );
        let server = Server::start(
            &MultiTaskRuntime::from_runtimes([strict]),
            ServerConfig {
                // Queue-aware, with a floor generous enough that a
                // slow CI machine's wake-up jitter stays under it.
                slack_floor_s: 20e-3,
                ..ServerConfig::default()
            },
        );
        let resp = server
            .submit(
                Task::Sst2,
                InferenceRequest::new(tokens).with_latency_target(60e-3),
            )
            .expect("admitted")
            .wait()
            .expect("worker alive");
        assert_eq!(resp.response, direct, "idle serve is bit-identical");
        assert_eq!(resp.slack_deducted_s, 0.0);
        assert!(
            resp.deadline_met,
            "sub-floor wake-up jitter ({} s) must not flip the verdict",
            resp.queue_delay_s
        );

        // Same contract for a request pre-stamped *above* the floor:
        // the floor gates the measured wait alone, so jitter is not
        // folded into the stamp and the response stays bit-identical
        // to serving the stamped request directly.
        let stamped = InferenceRequest::new(data.examples()[1].tokens.clone())
            .with_latency_target(90e-3)
            .with_elapsed_queue_s(40e-3);
        let want = rt
            .runtime(Task::Sst2)
            .expect("served")
            .builder()
            .uniform_thresholds(EntropyThresholds::uniform(0.0))
            .build()
            .serve(&stamped);
        let got = server
            .submit(Task::Sst2, stamped)
            .expect("admitted")
            .wait()
            .expect("worker alive");
        assert_eq!(
            got.response, want,
            "pre-stamped idle serve is bit-identical"
        );
        assert_eq!(got.slack_deducted_s, 40e-3);
        server.shutdown();
    }

    #[test]
    fn a_dead_worker_is_a_typed_error_not_a_panic() {
        // A worker that dies with the reply sender dropped used to
        // panic the *caller* inside `wait()`. It is now the typed
        // `WorkerLost` error, on both the blocking and timed paths.
        let (tx, rx) = sync_channel::<ServerResponse>(1);
        drop(tx);
        let handle = ResponseHandle {
            task: Task::Sst2,
            submission: 7,
            rx,
        };
        let lost = WorkerLost {
            task: Task::Sst2,
            submission: 7,
        };
        assert_eq!(handle.wait(), Err(lost));
        let (tx, rx) = sync_channel::<ServerResponse>(1);
        drop(tx);
        let handle = ResponseHandle {
            task: Task::Sst2,
            submission: 7,
            rx,
        };
        match handle.wait_timeout(Duration::from_millis(1)) {
            Ok(outcome) => assert_eq!(outcome, Err(lost)),
            Err(_) => panic!("a dropped sender is a loss, not a timeout"),
        }
        assert!(lost.to_string().contains("submission #7"));
    }

    #[test]
    fn shutdown_drains_every_admitted_request() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        let handles: Vec<ResponseHandle> = data
            .iter()
            .map(|ex| {
                server
                    .submit(Task::Sst2, InferenceRequest::new(ex.tokens.clone()))
                    .expect("admitted")
            })
            .collect();
        // Shut down immediately: the drain must serve everything that
        // was admitted before handles are waited on.
        let stats = server.shutdown();
        assert_eq!(stats.served(), data.len() as u64);
        assert_eq!(stats.queued(), 0);
        for handle in handles {
            let resp = handle
                .wait_timeout(Duration::from_secs(5))
                .expect("response was delivered during the drain")
                .expect("worker alive");
            assert!(resp.response.result.energy_j > 0.0);
        }
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let (rt, data) = fixture_runtime();
        let server = Server::start(&rt, blind_config());
        // Close admission by hand (shutdown consumes the server, so
        // poke the lane the way close_and_join does).
        for entry in &server.lanes {
            entry.lane.queue.lock().expect("lane mutex").shutting_down = true;
            entry.lane.available.notify_all();
        }
        let req = InferenceRequest::new(data.examples()[0].tokens.clone());
        assert!(matches!(
            server.submit(Task::Sst2, req),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
