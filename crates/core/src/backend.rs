//! Hardware backends behind one cost-accounting API.
//!
//! [`EdgeBertEngine`](crate::engine::EdgeBertEngine) runs the paper's
//! algorithms (early exit, exit-layer prediction, sentence-level DVFS)
//! against *some* hardware platform. The paper's headline claims are
//! comparative — the EdgeBERT accelerator vs. an Nvidia TX2 mobile-GPU
//! baseline — so the platform must be swappable without the baseline
//! quietly costing a different workload than the engine it is compared
//! against. [`InferenceBackend`] is that seam: it covers the per-layer
//! workload costing, segment execution at an operating point, the
//! nominal/floor operating points, the DVFS decision, and every
//! fixed per-sentence cost (wake transition, embedding read, launch
//! overhead).
//!
//! Two implementations ship:
//!
//! * [`AcceleratorBackend`] — the paper's 12 nm accelerator:
//!   [`AcceleratorSim`] op-level costing, per-sentence DVFS through
//!   [`DvfsController`], LDO/ADPLL transition accounting, and the eNVM
//!   ReRAM embedding buffer. This is the default, and its outputs are
//!   bit-identical to the pre-trait engine (pinned by
//!   `tests/backend_equivalence.rs`).
//! * [`MobileGpuBackend`] — the TX2-class comparison baseline: fixed
//!   V/F (no DVFS capability, [`InferenceBackend::can_scale`] is
//!   `false`), costs derived from the measured [`MobileGpu`] anchor,
//!   with the AAS FLOP-scale factor derived from the *same*
//!   [`WorkloadParams`] the engine is wired with — so comparison rows
//!   can no longer disagree with the engine about what is being priced.
//!
//! A cycle-accurate simulator or real-hardware harness slots in through
//! [`BackendSpec::Custom`] without touching the engine, serving, or
//! server layers.

use edgebert_envm::{CellTech, ReramArray};
use edgebert_hw::memory::sentence_embedding_bits;
use edgebert_hw::workload::EncoderWorkload;
use edgebert_hw::{
    AcceleratorConfig, AcceleratorSim, Adpll, DvfsController, Ldo, MobileGpu, WorkloadParams,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A `(voltage, frequency)` operating point chosen for an inference
/// segment, plus whether the deadline that produced it is achievable.
/// Serializes (serde) so a parked session's DVFS state can travel in a
/// [`SessionCheckpoint`](crate::session::SessionCheckpoint).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage, volts.
    pub voltage: f32,
    /// Clock frequency, Hz.
    pub freq_hz: f64,
    /// Whether the latency budget behind this decision is achievable.
    pub feasible: bool,
}

/// Latency and energy of one costed segment (layers, an embedding read,
/// or a fixed overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentCost {
    /// Wall-clock time, seconds.
    pub seconds: f64,
    /// Energy, joules.
    pub energy_j: f64,
}

impl SegmentCost {
    /// A free segment.
    pub const ZERO: SegmentCost = SegmentCost {
        seconds: 0.0,
        energy_j: 0.0,
    };
}

/// The hardware platform an [`EdgeBertEngine`](crate::engine::EdgeBertEngine)
/// costs inferences against.
///
/// The engine owns the algorithms (software forward pass, entropy
/// thresholds, exit-layer forecast) and drives the backend for every
/// hardware number: per-layer work, segment latency/energy at an
/// operating point, V/F decisions, and fixed per-sentence costs. A
/// backend that cannot scale V/F ([`can_scale`](Self::can_scale) is
/// `false`) still serves latency-aware requests — its
/// [`decide`](Self::decide) pins the nominal point and reports
/// feasibility against the fixed clock, so the engine degrades
/// gracefully to nominal-only scheduling.
pub trait InferenceBackend: std::fmt::Debug + Send + Sync {
    /// Short human-readable backend name for reports and benches.
    fn name(&self) -> &'static str;

    /// Work units (clock cycles on the backend's clock) of one encoder
    /// layer of the wired workload. The engine multiplies this by the
    /// forecast remaining depth when asking for a DVFS decision.
    fn layer_cycles(&self) -> u64;

    /// Whether the backend can move its V/F operating point per
    /// sentence. Fixed-point backends never transition, and their
    /// [`decide`](Self::decide) holds the nominal point.
    fn can_scale(&self) -> bool;

    /// The nominal (maximum-performance) operating point.
    fn nominal(&self) -> OperatingPoint;

    /// The floor (minimum-energy) operating point. Equals
    /// [`nominal`](Self::nominal) on fixed-V/F backends.
    fn floor(&self) -> OperatingPoint;

    /// Worst-case time to transition from nominal to the floor point,
    /// seconds — the reserve the engine subtracts from a latency budget
    /// before asking for a decision. Zero on fixed-V/F backends.
    fn floor_transition_s(&self) -> f64;

    /// Time to bring the platform from standby to the nominal point
    /// (rail slew + clock relock), charged at the start of a
    /// latency-aware sentence. Zero when the platform has no modeled
    /// standby state.
    fn wake_transition_s(&self) -> f64;

    /// Fixed per-sentence cost charged on every inference regardless of
    /// mode (e.g. kernel-launch and host-sync overhead on a GPU).
    fn sentence_overhead(&self) -> SegmentCost;

    /// Cost of reading the sentence's embedding rows from the
    /// platform's embedding store. Zero when that cost is already
    /// folded into the measured per-layer anchor.
    fn embedding_read_cost(&self) -> SegmentCost;

    /// The operating point for `remaining_cycles` of work within
    /// `remaining_seconds` of budget, of which `elapsed_queue_s` was
    /// already burned queueing (paper §5.2:
    /// `Freq_opt = N_cycles / (T − T_elapsed)`).
    fn decide(
        &self,
        remaining_cycles: u64,
        remaining_seconds: f64,
        elapsed_queue_s: f64,
    ) -> OperatingPoint;

    /// [`decide`](Self::decide) under a per-lane power envelope: the
    /// chosen operating point may not draw more than `cap_w` watts of
    /// sustained compute power. Feasibility is judged *honestly*
    /// against the capped point — an envelope that forbids the
    /// deadline-meeting point yields an infeasible decision rather
    /// than a silently re-priced one (mirroring how `stretch_cap_s`
    /// bounds only the compute window). The default delegates to
    /// [`decide`](Self::decide): a backend that cannot scale V/F (or
    /// does not model power) has no point below its fixed draw to
    /// clamp to, so the envelope cannot constrain it.
    fn decide_capped(
        &self,
        remaining_cycles: u64,
        remaining_seconds: f64,
        elapsed_queue_s: f64,
        _cap_w: f64,
    ) -> OperatingPoint {
        self.decide(remaining_cycles, remaining_seconds, elapsed_queue_s)
    }

    /// Sustained compute power drawn at the nominal operating point,
    /// watts — the anchor a fleet energy budget divides per-lane
    /// envelopes against. The default, `f64::INFINITY`, means the
    /// backend does not model power: every envelope then reads as
    /// unconstrained, and the energy coordinator leaves the backend's
    /// decisions untouched.
    fn nominal_power_w(&self) -> f64 {
        f64::INFINITY
    }

    /// Sustained compute power at the floor (minimum-energy) operating
    /// point, watts — the least a running shard of this backend can
    /// draw, and therefore the per-shard price an autoscaler must fit
    /// inside a lane's envelope before attaching another shard. Equals
    /// [`nominal_power_w`](Self::nominal_power_w) on fixed-V/F
    /// backends.
    fn floor_power_w(&self) -> f64 {
        self.nominal_power_w()
    }

    /// How much longer a nominal-speed sentence takes when this
    /// backend's operating point is clamped under a `cap_w` envelope:
    /// `f_nominal / f_capped ≥ 1`. Admission-side feasibility
    /// estimates (the overload shed rung) multiply their per-job
    /// service estimate by this, so an envelope-constrained lane sheds
    /// against the throughput it can actually deliver. The default,
    /// 1.0, matches backends the envelope cannot constrain.
    fn envelope_service_scale(&self, _cap_w: f64) -> f64 {
        1.0
    }

    /// Time to transition from the nominal point to `to`, seconds.
    fn transition_s(&self, to: &OperatingPoint) -> f64;

    /// Runs `layers` encoder layers of the wired workload at an
    /// operating point.
    fn run_layers(&self, layers: usize, at: &OperatingPoint) -> SegmentCost;

    /// Runs `layers` encoder layers at the nominal point.
    fn run_layers_nominal(&self, layers: usize) -> SegmentCost {
        self.run_layers(layers, &self.nominal())
    }

    /// The op-level accelerator simulator, when this backend is built on
    /// one (experiment drivers that trace accelerator internals — e.g.
    /// the Fig. 7 LDO waveform — require it).
    fn as_accelerator(&self) -> Option<&AcceleratorSim> {
        None
    }

    /// The mobile-GPU baseline model, when this backend *is* one — so
    /// comparison-row helpers reuse the engine's wired anchor instead
    /// of silently re-deriving the default.
    fn as_mobile_gpu(&self) -> Option<&MobileGpuBackend> {
        None
    }
}

/// Which backend an [`EngineBuilder`](crate::engine::EngineBuilder)
/// wires into the engine it builds.
#[derive(Debug, Clone, Default)]
pub enum BackendSpec {
    /// The paper's accelerator + DVFS on the builder's wired
    /// accelerator config, workload, and eNVM cell (the default).
    #[default]
    Accelerator,
    /// The mobile-GPU comparison baseline, costing the builder's wired
    /// workload.
    MobileGpu(MobileGpu),
    /// A custom backend (cycle-accurate sim, real hardware), used
    /// as-is.
    Custom(Arc<dyn InferenceBackend>),
}

/// The paper's accelerator platform: op-level simulator, DVFS
/// controller, LDO/ADPLL transition costs, and the ReRAM embedding
/// buffer.
#[derive(Debug, Clone)]
pub struct AcceleratorBackend {
    sim: AcceleratorSim,
    dvfs: DvfsController,
    layer: EncoderWorkload,
    layer_cycles: u64,
    rram: ReramArray,
    embed_bits: usize,
    nominal_power_w: f64,
}

impl AcceleratorBackend {
    /// Builds the backend for an accelerator design point, a workload,
    /// and the eNVM cell technology backing the embedding buffer.
    pub fn new(
        accel: AcceleratorConfig,
        workload: &WorkloadParams,
        cell_tech: CellTech,
        envm_capacity_mb: f64,
    ) -> Self {
        let sim = AcceleratorSim::new(accel);
        let layer = sim.layer_workload(workload);
        let layer_cycles = layer.cycles();
        let embed_bits = sentence_embedding_bits(workload.seq_len, 128, 0.4);
        // Sustained compute power at nominal V/F: average power of a
        // nominal-point layer run. Layers are homogeneous, so one layer
        // prices the same watts as full depth; the fleet coordinator
        // scales envelopes relative to this anchor.
        let nominal_cost = sim.run_layers(&layer, 1, accel.vdd_nominal, accel.freq_max_hz);
        let nominal_power_w = nominal_cost.energy_j / nominal_cost.seconds;
        Self {
            dvfs: DvfsController::new(accel),
            sim,
            layer,
            layer_cycles,
            rram: ReramArray::new(cell_tech, envm_capacity_mb),
            embed_bits,
            nominal_power_w,
        }
    }

    /// The underlying op-level simulator.
    pub fn simulator(&self) -> &AcceleratorSim {
        &self.sim
    }

    /// The DVFS controller.
    pub fn dvfs(&self) -> &DvfsController {
        &self.dvfs
    }
}

impl InferenceBackend for AcceleratorBackend {
    fn name(&self) -> &'static str {
        "accelerator"
    }

    fn layer_cycles(&self) -> u64 {
        self.layer_cycles
    }

    fn can_scale(&self) -> bool {
        true
    }

    fn nominal(&self) -> OperatingPoint {
        let cfg = self.sim.config();
        OperatingPoint {
            voltage: cfg.vdd_nominal,
            freq_hz: cfg.freq_max_hz,
            feasible: true,
        }
    }

    fn floor(&self) -> OperatingPoint {
        let cfg = self.sim.config();
        OperatingPoint {
            voltage: cfg.vdd_min,
            freq_hz: self.dvfs.vf_table().freq_at_voltage(cfg.vdd_min),
            feasible: true,
        }
    }

    fn floor_transition_s(&self) -> f64 {
        self.dvfs.floor_transition_s()
    }

    fn wake_transition_s(&self) -> f64 {
        let cfg = self.sim.config();
        let ldo = Ldo::new(cfg.vdd_standby);
        let pll = Adpll::new(cfg.freq_max_hz);
        ldo.transition_time_ns(cfg.vdd_standby, cfg.vdd_nominal) * 1e-9 + pll.relock_ns() * 1e-9
    }

    fn sentence_overhead(&self) -> SegmentCost {
        SegmentCost::ZERO
    }

    fn embedding_read_cost(&self) -> SegmentCost {
        SegmentCost {
            seconds: self.rram.read_latency_ns(self.embed_bits) * 1e-9,
            energy_j: self.rram.read_energy_pj(self.embed_bits) * 1e-12,
        }
    }

    fn decide(
        &self,
        remaining_cycles: u64,
        remaining_seconds: f64,
        elapsed_queue_s: f64,
    ) -> OperatingPoint {
        let d = self
            .dvfs
            .decide_with_elapsed(remaining_cycles, remaining_seconds, elapsed_queue_s);
        OperatingPoint {
            voltage: d.voltage,
            freq_hz: d.freq_hz,
            feasible: d.feasible,
        }
    }

    fn decide_capped(
        &self,
        remaining_cycles: u64,
        remaining_seconds: f64,
        elapsed_queue_s: f64,
        cap_w: f64,
    ) -> OperatingPoint {
        debug_assert!(
            elapsed_queue_s >= 0.0 && elapsed_queue_s.is_finite(),
            "queueing delay must be finite and non-negative, got {elapsed_queue_s}"
        );
        let rel_cap = cap_w / self.nominal_power_w;
        let d = self.dvfs.decide_power_capped(
            remaining_cycles,
            remaining_seconds - elapsed_queue_s,
            rel_cap,
        );
        OperatingPoint {
            voltage: d.voltage,
            freq_hz: d.freq_hz,
            feasible: d.feasible,
        }
    }

    fn nominal_power_w(&self) -> f64 {
        self.nominal_power_w
    }

    fn floor_power_w(&self) -> f64 {
        let floor = self.floor();
        self.nominal_power_w * self.dvfs.relative_power(floor.voltage, floor.freq_hz)
    }

    fn envelope_service_scale(&self, cap_w: f64) -> f64 {
        let rel_cap = cap_w / self.nominal_power_w;
        if rel_cap >= 1.0 {
            return 1.0;
        }
        let (_, f_cap) = self.dvfs.power_capped_point(rel_cap);
        // power_capped_point never stalls the clock, so f_cap > 0 and
        // the scale is a finite slowdown factor ≥ 1.
        (self.sim.config().freq_max_hz / f_cap).max(1.0)
    }

    fn transition_s(&self, to: &OperatingPoint) -> f64 {
        // The LDO slews from nominal toward the decision voltage while
        // the ADPLL relocks (relock is free when the clock holds fmax).
        let cfg = self.sim.config();
        let ldo = Ldo::new(cfg.vdd_standby);
        let pll = Adpll::new(cfg.freq_max_hz);
        ldo.transition_time_ns(cfg.vdd_nominal, to.voltage) * 1e-9
            + if to.freq_hz == cfg.freq_max_hz {
                0.0
            } else {
                pll.relock_ns() * 1e-9
            }
    }

    fn run_layers(&self, layers: usize, at: &OperatingPoint) -> SegmentCost {
        let cost = self
            .sim
            .run_layers(&self.layer, layers, at.voltage, at.freq_hz);
        SegmentCost {
            seconds: cost.seconds,
            energy_j: cost.energy_j,
        }
    }

    fn as_accelerator(&self) -> Option<&AcceleratorSim> {
        Some(&self.sim)
    }
}

/// The supply voltage [`MobileGpuBackend`] reports in results: the
/// board runs a fixed rail the model does not scale, so a single
/// representative value stands in for it.
pub const MGPU_RAIL_V: f32 = 1.0;

/// The virtual clock [`MobileGpuBackend`] expresses work units on:
/// 1 GHz, so one "cycle" is one nanosecond of anchored per-layer time.
pub const MGPU_VIRTUAL_HZ: f64 = 1.0e9;

/// The TX2-class mobile-GPU comparison baseline as an engine backend.
///
/// Fixed V/F: [`can_scale`](InferenceBackend::can_scale) is `false`,
/// [`decide`](InferenceBackend::decide) always pins the nominal point
/// (judging feasibility against the fixed clock), and all transition
/// costs are zero. Latency and energy derive from the measured
/// [`MobileGpu`] anchor; the AAS FLOP-scale factor is derived from the
/// wired [`WorkloadParams`] (the GPU benefits from adaptive attention
/// span, but not from bitmask sparsity), so the baseline prices the
/// same workload the engine serves. The embedding read costs zero
/// because the anchor measurement already includes DRAM traffic, and
/// the fixed kernel-launch/host-sync overhead is charged per sentence
/// through [`sentence_overhead`](InferenceBackend::sentence_overhead).
#[derive(Debug, Clone)]
pub struct MobileGpuBackend {
    gpu: MobileGpu,
    flop_scale: f64,
    layer_cycles: u64,
}

impl MobileGpuBackend {
    /// Builds the baseline with an explicit FLOP scale.
    pub fn with_flop_scale(gpu: MobileGpu, flop_scale: f64) -> Self {
        let flop_scale = MobileGpu::effective_flop_scale(flop_scale);
        // Work units on the virtual clock: one cycle per nanosecond of
        // anchored per-layer compute, floored at 1 so the engine's
        // remaining-work product never degenerates to zero.
        let layer_cycles = (gpu.per_layer_latency_s(flop_scale) * MGPU_VIRTUAL_HZ)
            .round()
            .max(1.0) as u64;
        Self {
            gpu,
            flop_scale,
            layer_cycles,
        }
    }

    /// Builds the baseline for the workload an engine is wired with,
    /// deriving the AAS FLOP-scale factor the way the paper's Fig. 8
    /// does: the cycle ratio between the workload and its dense,
    /// all-heads-open counterpart on the reference accelerator model,
    /// clamped to `[0.5, 1.0]`. A workload without AAS derives 1.0.
    pub fn from_workload(gpu: MobileGpu, workload: &WorkloadParams) -> Self {
        let mut dense = workload.clone();
        dense.aas_enabled = false;
        dense.sparse_enabled = false;
        let sim = AcceleratorSim::new(AcceleratorConfig::energy_optimal());
        let c_dense = sim.layer_workload(&dense).cycles() as f64;
        let c_wired = sim.layer_workload(workload).cycles() as f64;
        let flop_scale = if c_dense > 0.0 {
            (c_wired / c_dense).clamp(0.5, 1.0)
        } else {
            1.0
        };
        Self::with_flop_scale(gpu, flop_scale)
    }

    /// The anchor model.
    pub fn gpu(&self) -> &MobileGpu {
        &self.gpu
    }

    /// The derived (sanitized) FLOP scale applied to every layer.
    pub fn flop_scale(&self) -> f64 {
        self.flop_scale
    }

    /// A whole `layers`-deep inference: fixed overhead plus the scaled
    /// per-layer costs — the comparison-row number. Delegates to
    /// [`MobileGpu::inference_latency_s`]/[`MobileGpu::inference_energy_j`]
    /// so one formula (the anchor model's) owns the pricing.
    pub fn full_inference(&self, layers: usize) -> SegmentCost {
        SegmentCost {
            seconds: self.gpu.inference_latency_s(layers, self.flop_scale),
            energy_j: self.gpu.inference_energy_j(layers, self.flop_scale),
        }
    }
}

impl InferenceBackend for MobileGpuBackend {
    fn name(&self) -> &'static str {
        "mobile-gpu"
    }

    fn layer_cycles(&self) -> u64 {
        self.layer_cycles
    }

    fn can_scale(&self) -> bool {
        false
    }

    fn nominal(&self) -> OperatingPoint {
        OperatingPoint {
            voltage: MGPU_RAIL_V,
            freq_hz: MGPU_VIRTUAL_HZ,
            feasible: true,
        }
    }

    fn floor(&self) -> OperatingPoint {
        self.nominal()
    }

    fn floor_transition_s(&self) -> f64 {
        0.0
    }

    fn wake_transition_s(&self) -> f64 {
        0.0
    }

    fn sentence_overhead(&self) -> SegmentCost {
        let overhead_s = self.gpu.effective_overhead_s();
        SegmentCost {
            seconds: overhead_s,
            energy_j: overhead_s * self.gpu.effective_power_w(),
        }
    }

    fn embedding_read_cost(&self) -> SegmentCost {
        SegmentCost::ZERO
    }

    fn decide(
        &self,
        remaining_cycles: u64,
        remaining_seconds: f64,
        elapsed_queue_s: f64,
    ) -> OperatingPoint {
        // No DVFS capability: hold the fixed point and report whether
        // the remaining work fits the remaining budget at it. A NaN
        // budget compares false, i.e. infeasible.
        let mut point = self.nominal();
        let need_s = remaining_cycles as f64 / point.freq_hz;
        point.feasible = need_s <= remaining_seconds - elapsed_queue_s;
        point
    }

    fn nominal_power_w(&self) -> f64 {
        // Fixed rail: the board draws its measured effective power
        // whenever it computes, so nominal == floor == that draw (the
        // trait's floor default picks it up).
        self.gpu.effective_power_w()
    }

    fn transition_s(&self, _to: &OperatingPoint) -> f64 {
        0.0
    }

    fn run_layers(&self, layers: usize, _at: &OperatingPoint) -> SegmentCost {
        // Fixed V/F: the operating point cannot change the cost.
        let seconds = self.gpu.per_layer_latency_s(self.flop_scale) * layers as f64;
        SegmentCost {
            seconds,
            energy_j: seconds * self.gpu.effective_power_w(),
        }
    }

    fn as_mobile_gpu(&self) -> Option<&MobileGpuBackend> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> AcceleratorBackend {
        AcceleratorBackend::new(
            AcceleratorConfig::energy_optimal(),
            &WorkloadParams::albert_base(),
            CellTech::Mlc2,
            2.0,
        )
    }

    #[test]
    fn accelerator_backend_matches_direct_sim() {
        // The backend is a reshuffling of the same hw calls the engine
        // used to make inline: segment costs must be bit-identical to
        // driving the simulator directly.
        let b = accel();
        let sim = AcceleratorSim::new(AcceleratorConfig::energy_optimal());
        let layer = sim.layer_workload(&WorkloadParams::albert_base());
        assert_eq!(b.layer_cycles(), layer.cycles());
        for layers in [1usize, 3, 12] {
            let direct = sim.run_layers_nominal(&layer, layers);
            let via = b.run_layers_nominal(layers);
            assert_eq!(via.seconds, direct.seconds);
            assert_eq!(via.energy_j, direct.energy_j);
            let scaled = sim.run_layers(&layer, layers, 0.6, 0.5e9);
            let via = b.run_layers(
                layers,
                &OperatingPoint {
                    voltage: 0.6,
                    freq_hz: 0.5e9,
                    feasible: true,
                },
            );
            assert_eq!(via.seconds, scaled.seconds);
            assert_eq!(via.energy_j, scaled.energy_j);
        }
        // Decisions delegate to the DVFS controller verbatim.
        let d = b.dvfs().decide(40_000_000, 50e-3);
        let p = b.decide(40_000_000, 50e-3, 0.0);
        assert_eq!(
            (p.voltage, p.freq_hz, p.feasible),
            (d.voltage, d.freq_hz, d.feasible)
        );
        assert!(b.can_scale());
        assert!(b.as_accelerator().is_some());
        assert_eq!(b.floor_transition_s(), b.dvfs().floor_transition_s());
    }

    #[test]
    fn accelerator_points_and_transitions() {
        let b = accel();
        let cfg = AcceleratorConfig::energy_optimal();
        let nom = b.nominal();
        assert_eq!(nom.voltage, cfg.vdd_nominal);
        assert_eq!(nom.freq_hz, cfg.freq_max_hz);
        let floor = b.floor();
        assert_eq!(floor.voltage, cfg.vdd_min);
        assert!(floor.freq_hz < nom.freq_hz);
        // Staying at nominal costs no relock; moving to the floor costs
        // the worst-case reserve.
        assert_eq!(b.transition_s(&nom), 0.0);
        assert!((b.transition_s(&floor) - b.floor_transition_s()).abs() < 1e-15);
        assert!(b.wake_transition_s() > 0.0);
        assert_eq!(b.sentence_overhead(), SegmentCost::ZERO);
        let embed = b.embedding_read_cost();
        assert!(embed.seconds > 0.0 && embed.energy_j > 0.0);
    }

    #[test]
    fn mgpu_backend_prices_the_anchor() {
        let gpu = MobileGpu::default();
        let b = MobileGpuBackend::with_flop_scale(gpu, 1.0);
        let full = b.full_inference(12);
        assert_eq!(full.seconds, gpu.inference_latency_s(12, 1.0));
        assert_eq!(full.energy_j, gpu.inference_energy_j(12, 1.0));
        assert!(!b.can_scale());
        assert_eq!(b.floor(), b.nominal());
        assert_eq!(b.wake_transition_s(), 0.0);
        assert_eq!(b.floor_transition_s(), 0.0);
        assert_eq!(b.embedding_read_cost(), SegmentCost::ZERO);
        assert!(b.as_accelerator().is_none());
        // The operating point cannot change the cost.
        let slow = OperatingPoint {
            voltage: 0.5,
            freq_hz: 1.0,
            feasible: true,
        };
        assert_eq!(b.run_layers(3, &slow), b.run_layers_nominal(3));
    }

    #[test]
    fn mgpu_decide_degrades_to_nominal_only() {
        let b = MobileGpuBackend::with_flop_scale(MobileGpu::default(), 1.0);
        // Plenty of budget: feasible, still at the fixed point.
        let loose = b.decide(b.layer_cycles() * 2, 1.0, 0.0);
        assert!(loose.feasible);
        assert_eq!(
            (loose.voltage, loose.freq_hz),
            (MGPU_RAIL_V, MGPU_VIRTUAL_HZ)
        );
        // Impossible budget: same point, flagged infeasible.
        let tight = b.decide(b.layer_cycles() * 11, 1e-4, 0.0);
        assert!(!tight.feasible);
        assert_eq!(
            (tight.voltage, tight.freq_hz),
            (MGPU_RAIL_V, MGPU_VIRTUAL_HZ)
        );
        // Queueing burns the budget.
        let queued = b.decide(b.layer_cycles(), 20e-3, 19e-3);
        assert!(!queued.feasible);
        // NaN budgets are infeasible, never propagated.
        let nan = b.decide(b.layer_cycles(), f64::NAN, 0.0);
        assert!(!nan.feasible);
    }

    #[test]
    fn mgpu_flop_scale_derives_from_the_workload() {
        let gpu = MobileGpu::default();
        // Dense, all heads open: no AAS benefit.
        let dense = MobileGpuBackend::from_workload(gpu, &WorkloadParams::albert_base());
        assert_eq!(dense.flop_scale(), 1.0);
        // AAS with most heads off: a real reduction, clamped to ≥ 0.5.
        let mut spans = vec![0.0f32; 12];
        spans[0] = 20.0;
        spans[7] = 40.0;
        let optimized = WorkloadParams::albert_base().with_optimizations(0.6, &spans);
        let aas = MobileGpuBackend::from_workload(gpu, &optimized);
        assert!(
            (0.5..1.0).contains(&aas.flop_scale()),
            "scale {}",
            aas.flop_scale()
        );
        assert!(aas.full_inference(12).seconds < dense.full_inference(12).seconds);
        // Garbage explicit scales sanitize instead of poisoning costs.
        let bad = MobileGpuBackend::with_flop_scale(gpu, f64::NAN);
        assert_eq!(bad.flop_scale(), 1.0);
        assert!(bad.full_inference(12).seconds.is_finite());
    }

    #[test]
    fn accelerator_power_anchor_is_the_nominal_layer_draw() {
        let b = accel();
        // The anchor is energy/seconds of a nominal-point run; layers
        // are homogeneous, so 1 layer and 12 layers price identically.
        let one = b.run_layers_nominal(1);
        let twelve = b.run_layers_nominal(12);
        let p1 = one.energy_j / one.seconds;
        let p12 = twelve.energy_j / twelve.seconds;
        assert!((b.nominal_power_w() - p1).abs() < 1e-12 * p1);
        assert!((p12 - p1).abs() < 1e-9 * p1);
        // A plausible 12 nm accelerator draw, and a floor well below it
        // (the grid's (V/V_nom)²·(f/f_nom) at the 0.50 V point).
        assert!(
            (0.005..5.0).contains(&b.nominal_power_w()),
            "nominal draw {} W",
            b.nominal_power_w()
        );
        let floor = b.floor();
        let expected_floor =
            b.nominal_power_w() * b.dvfs().relative_power(floor.voltage, floor.freq_hz);
        assert!((b.floor_power_w() - expected_floor).abs() < 1e-12);
        assert!(b.floor_power_w() < 0.25 * b.nominal_power_w());
        assert!(b.floor_power_w() > 0.0);
    }

    #[test]
    fn accelerator_decide_capped_clamps_and_judges_honestly() {
        let b = accel();
        // Near-deadline demand that wants nominal: a 50% envelope must
        // clamp the point below nominal and judge feasibility at the
        // clamped clock, not silently pass the uncapped verdict.
        let cycles = 900_000_000u64;
        let uncapped = b.decide(cycles, 1.0, 0.0);
        assert!(uncapped.feasible);
        let cap_w = 0.5 * b.nominal_power_w();
        let capped = b.decide_capped(cycles, 1.0, 0.0, cap_w);
        assert!(capped.freq_hz < uncapped.freq_hz);
        assert!(
            b.dvfs().relative_power(capped.voltage, capped.freq_hz) <= 0.5 + 1e-12,
            "capped point must fit the envelope"
        );
        assert_eq!(
            capped.feasible,
            cycles as f64 / capped.freq_hz <= 1.0 * (1.0 + 1e-9)
        );
        // A generous envelope is bit-identical to the uncapped path.
        for cap in [
            b.nominal_power_w(),
            10.0 * b.nominal_power_w(),
            f64::INFINITY,
        ] {
            let c = b.decide_capped(cycles, 1.0, 12e-3, cap);
            assert_eq!(c, b.decide(cycles, 1.0, 12e-3));
        }
        // Queueing delay burns the window before the cap applies, same
        // as the uncapped elapsed-aware path.
        let queued = b.decide_capped(cycles, 1.0, 0.4, cap_w);
        let direct = b
            .dvfs()
            .decide_power_capped(cycles, 1.0 - 0.4, cap_w / b.nominal_power_w());
        assert_eq!(
            (queued.voltage, queued.freq_hz),
            (direct.voltage, direct.freq_hz)
        );
    }

    #[test]
    fn accelerator_envelope_service_scale_prices_the_slowdown() {
        let b = accel();
        // Unconstrained envelopes cost nothing.
        assert_eq!(b.envelope_service_scale(f64::INFINITY), 1.0);
        assert_eq!(b.envelope_service_scale(b.nominal_power_w()), 1.0);
        // A constraining envelope slows service by f_nom / f_cap.
        let half = b.envelope_service_scale(0.5 * b.nominal_power_w());
        assert!(half > 1.0 && half.is_finite());
        // Even a zero envelope prices the floor clock, never a stall.
        let starved = b.envelope_service_scale(0.0);
        let floor = b.floor();
        let expected = b.nominal().freq_hz / floor.freq_hz;
        assert!((starved - expected).abs() < 1e-12);
        assert!(starved >= half);
    }

    #[test]
    fn mgpu_power_is_fixed_and_envelopes_are_inert() {
        let b = MobileGpuBackend::with_flop_scale(MobileGpu::default(), 1.0);
        assert_eq!(b.nominal_power_w(), b.gpu().effective_power_w());
        // Fixed rail: floor draw equals nominal draw (trait default).
        assert_eq!(b.floor_power_w(), b.nominal_power_w());
        assert_eq!(b.envelope_service_scale(0.1), 1.0);
        // No point below the fixed draw exists: decide_capped delegates
        // to decide bit-for-bit, even under a starving cap.
        for cap in [0.0, 0.5 * b.nominal_power_w(), f64::INFINITY] {
            let c = b.decide_capped(b.layer_cycles() * 4, 30e-3, 1e-3, cap);
            assert_eq!(c, b.decide(b.layer_cycles() * 4, 30e-3, 1e-3));
        }
    }

    #[test]
    fn backends_are_object_safe_and_shared() {
        // The engine holds `Arc<dyn InferenceBackend>` and is cloned
        // into server pools: the trait must stay object-safe, Send, and
        // Sync.
        let backends: Vec<Arc<dyn InferenceBackend>> = vec![
            Arc::new(accel()),
            Arc::new(MobileGpuBackend::with_flop_scale(MobileGpu::default(), 1.0)),
        ];
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        for b in &backends {
            assert_send_sync(b);
            assert!(b.layer_cycles() > 0);
            assert!(b.run_layers_nominal(1).seconds > 0.0);
        }
        let names: Vec<&str> = backends.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["accelerator", "mobile-gpu"]);
    }
}
