//! End-to-end task artifacts: train → quantize → calibrate → predictor.
//!
//! [`TaskArtifacts::build`] runs the paper's full Fig. 4 flow for one
//! task and packages everything the experiments need: the optimized
//! student model (FP8-quantized weights and activations), the sweep
//! cache, the trained entropy predictor and its LUT, and the calibrated
//! thresholds for 1/2/5 % accuracy-drop targets.

use crate::calibrate::{calibrate_conventional, calibrate_latency_aware, Calibration, SweepCache};
use crate::engine::EdgeBertEngine;
use crate::predictor::{EntropyPredictor, PredictorLut};
use edgebert_hw::{AcceleratorConfig, WorkloadParams};
use edgebert_model::{AlbertConfig, AlbertModel, TrainOptions, Trainer, TrainingSummary};
use edgebert_tasks::{Dataset, Task, TaskGenerator, VocabLayout};
use serde::{Deserialize, Serialize};

/// How big to build the artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal sizes for unit/integration tests.
    Test,
    /// The sizes used by the `repro` binary to regenerate the paper's
    /// tables and figures (12-layer, 12-head model on a larger corpus).
    Paper,
}

impl Scale {
    /// Model configuration for a task at this scale.
    pub fn model_config(self, vocab_size: usize, num_classes: usize) -> AlbertConfig {
        match self {
            Scale::Test => AlbertConfig::tiny(vocab_size, num_classes),
            Scale::Paper => AlbertConfig::small(vocab_size, num_classes),
        }
    }

    /// Training-set size.
    pub fn train_size(self) -> usize {
        match self {
            Scale::Test => 72,
            Scale::Paper => 512,
        }
    }

    /// Dev-set size.
    pub fn dev_size(self) -> usize {
        match self {
            Scale::Test => 36,
            Scale::Paper => 176,
        }
    }

    /// Fine-tuning epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Test => 3,
            Scale::Paper => 5,
        }
    }

    /// Predictor training epochs (full-batch Adam steps).
    pub fn predictor_epochs(self) -> usize {
        match self {
            Scale::Test => 150,
            Scale::Paper => 500,
        }
    }
}

/// Everything the experiments need for one task.
#[derive(Debug, Clone)]
pub struct TaskArtifacts {
    /// The task.
    pub task: Task,
    /// Scale the artifacts were built at.
    pub scale: Scale,
    /// The optimized student model (quantized weights + activations).
    pub model: AlbertModel,
    /// Training summary (sparsities, spans, accuracies).
    pub summary: TrainingSummary,
    /// Training split.
    pub train: Dataset,
    /// Dev split (used for calibration and evaluation).
    pub dev: Dataset,
    /// Layerwise sweep cache over `dev`.
    pub cache: SweepCache,
    /// The trained entropy predictor.
    pub predictor: EntropyPredictor,
    /// Its distilled LUT.
    pub lut: PredictorLut,
    /// Conventional-EE calibrations at 1/2/5 % drops.
    pub calib_conv: [Calibration; 3],
    /// Latency-aware calibrations at 1/2/5 % drops.
    pub calib_lai: [Calibration; 3],
}

impl TaskArtifacts {
    /// Runs the full pipeline for a task.
    pub fn build(task: Task, scale: Scale, seed: u64) -> Self {
        let layout = VocabLayout::standard();
        let cfg = scale.model_config(layout.vocab_size(), task.num_classes());
        let gen = TaskGenerator::standard(task, cfg.max_seq_len);
        let data = gen.generate(scale.train_size() + scale.dev_size(), seed);
        let (train, dev) =
            data.split(scale.train_size() as f32 / (scale.train_size() + scale.dev_size()) as f32);

        let opts = TrainOptions {
            epochs: scale.epochs(),
            seed,
            embedding_sparsity: task.paper_embedding_sparsity(),
            encoder_prune: Some((
                edgebert_nn::prune::PruneMethod::Movement,
                task.paper_encoder_sparsity(),
            )),
            ..TrainOptions::default()
        };
        let trainer = Trainer::new(cfg, layout, opts);
        let (mut model, summary) = trainer.run(&train, &dev);

        // Evaluation-time quantization (Fig. 4): FP8 weights and
        // activations with per-layer adaptive exponent bias.
        model.quantize_weights(4);
        model.enable_activation_quant(4);

        // Predictor: trained on the training split's trajectories.
        let train_cache = SweepCache::build(&model, &train);
        let predictor =
            EntropyPredictor::train(&train_cache.entropy_dataset(), scale.predictor_epochs(), seed);
        let max_h = (task.num_classes() as f32).ln() * 1.05;
        let lut = predictor.to_lut(64, max_h);

        // Calibration on the dev split.
        let cache = SweepCache::build(&model, &dev);
        let drops = [0.01f32, 0.02, 0.05];
        let calib_conv = drops.map(|d| calibrate_conventional(&cache, d));
        let calib_lai = drops.map(|d| calibrate_latency_aware(&cache, &lut, d));

        Self {
            task,
            scale,
            model,
            summary,
            train,
            dev,
            cache,
            predictor,
            lut,
            calib_conv,
            calib_lai,
        }
    }

    /// Hardware workload at the paper's ALBERT-base shapes for this task,
    /// optionally with the task's published optimization results applied
    /// (Table 1 spans, Table 3 encoder sparsity).
    pub fn hardware_workload(&self, optimized: bool) -> WorkloadParams {
        let mut wl = WorkloadParams::albert_base();
        wl.classes = self.task.num_classes();
        if optimized {
            wl = wl.with_optimizations(
                self.task.paper_encoder_sparsity(),
                &self.task.paper_head_spans(),
            );
        }
        wl
    }

    /// Builds an inference engine at a latency target using the 1 %-drop
    /// calibration and the unoptimized hardware workload.
    pub fn engine(&self, latency_target_s: f64) -> EdgeBertEngine<'_> {
        self.engine_at(latency_target_s, 0, false)
    }

    /// Builds an engine with explicit drop index (0 → 1 %, 1 → 2 %,
    /// 2 → 5 %) and workload optimization flag.
    pub fn engine_at(
        &self,
        latency_target_s: f64,
        drop_idx: usize,
        optimized: bool,
    ) -> EdgeBertEngine<'_> {
        let wl = self.hardware_workload(optimized);
        EdgeBertEngine::new(
            &self.model,
            &self.lut,
            AcceleratorConfig::energy_optimal(),
            &wl,
            latency_target_s,
            self.calib_conv[drop_idx].entropy_threshold,
            self.calib_lai[drop_idx].entropy_threshold,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InferenceMode;

    #[test]
    fn build_test_scale_artifacts() {
        let art = TaskArtifacts::build(Task::Sst2, Scale::Test, 77);
        // Pruning targets hit.
        assert!((art.summary.encoder_sparsity - 0.5).abs() < 0.06);
        assert!((art.summary.embedding_sparsity - 0.6).abs() < 0.06);
        // Model learned something.
        assert!(art.summary.student_accuracy > 0.55);
        // Calibrations are ordered: looser drop ⇒ earlier exits.
        assert!(art.calib_conv[2].avg_exit_layer <= art.calib_conv[0].avg_exit_layer + 1e-4);
        // LAI thresholds track the conventional ones (the paper finds
        // them lower; with a tiny dev set we only require "not wildly
        // higher") and its exits stay within the layer range.
        for i in 0..3 {
            assert!(
                art.calib_lai[i].entropy_threshold
                    <= art.calib_conv[i].entropy_threshold + 0.2,
                "LAI {} vs conv {}",
                art.calib_lai[i].entropy_threshold,
                art.calib_conv[i].entropy_threshold
            );
            assert!(art.calib_lai[i].avg_exit_layer >= 1.0);
            assert!(
                art.calib_lai[i].avg_predicted_layer
                    <= art.model.num_layers() as f32 + 1e-4
            );
        }
        // Engine runs end to end.
        let engine = art.engine(100e-3);
        let agg = engine.evaluate(&art.dev, InferenceMode::LatencyAware);
        assert!(agg.avg_energy_j > 0.0);
        assert!(agg.accuracy > 0.4);
    }
}
