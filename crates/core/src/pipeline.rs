//! End-to-end task artifacts: train → quantize → calibrate → predictor.
//!
//! [`TaskArtifacts::build`] runs the paper's full Fig. 4 flow for one
//! task and packages everything the experiments need: the optimized
//! student model (FP8-quantized weights and activations), the sweep
//! cache, the trained entropy predictor and its LUT, and the calibrated
//! thresholds for 1/2/5 % accuracy-drop targets.

use crate::calibrate::{calibrate_conventional, calibrate_latency_aware, Calibration, SweepCache};
use crate::engine::{DropTarget, EdgeBertEngine, EngineBuilder};
use crate::predictor::{EntropyPredictor, PredictorLut};
use edgebert_hw::WorkloadParams;
use edgebert_model::{AlbertConfig, AlbertModel, TrainOptions, Trainer, TrainingSummary};
use edgebert_tasks::{Dataset, Task, TaskGenerator, VocabLayout};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How big to build the artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal sizes for unit/integration tests.
    Test,
    /// The sizes used by the `repro` binary to regenerate the paper's
    /// tables and figures (12-layer, 12-head model on a larger corpus).
    Paper,
}

impl Scale {
    /// Model configuration for a task at this scale.
    pub fn model_config(self, vocab_size: usize, num_classes: usize) -> AlbertConfig {
        match self {
            Scale::Test => AlbertConfig::tiny(vocab_size, num_classes),
            Scale::Paper => AlbertConfig::small(vocab_size, num_classes),
        }
    }

    /// Training-set size.
    pub fn train_size(self) -> usize {
        match self {
            Scale::Test => 72,
            Scale::Paper => 512,
        }
    }

    /// Dev-set size.
    pub fn dev_size(self) -> usize {
        match self {
            Scale::Test => 36,
            Scale::Paper => 176,
        }
    }

    /// Fine-tuning epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Test => 3,
            Scale::Paper => 5,
        }
    }

    /// Predictor training epochs (full-batch Adam steps).
    pub fn predictor_epochs(self) -> usize {
        match self {
            Scale::Test => 150,
            Scale::Paper => 500,
        }
    }
}

/// Everything the experiments need for one task.
#[derive(Debug, Clone)]
pub struct TaskArtifacts {
    /// The task.
    pub task: Task,
    /// Scale the artifacts were built at.
    pub scale: Scale,
    /// The optimized student model (quantized weights + activations),
    /// shared so runtimes and engines can hold it without copying.
    pub model: Arc<AlbertModel>,
    /// Training summary (sparsities, spans, accuracies).
    pub summary: TrainingSummary,
    /// Training split.
    pub train: Dataset,
    /// Dev split (used for calibration and evaluation).
    pub dev: Dataset,
    /// Layerwise sweep cache over `dev`.
    pub cache: SweepCache,
    /// The trained entropy predictor.
    pub predictor: EntropyPredictor,
    /// Its distilled LUT, shared like the model.
    pub lut: Arc<PredictorLut>,
    /// Conventional-EE calibrations at 1/2/5 % drops.
    pub calib_conv: [Calibration; 3],
    /// Latency-aware calibrations at 1/2/5 % drops.
    pub calib_lai: [Calibration; 3],
}

impl TaskArtifacts {
    /// Runs the full pipeline for a task.
    pub fn build(task: Task, scale: Scale, seed: u64) -> Self {
        let layout = VocabLayout::standard();
        let cfg = scale.model_config(layout.vocab_size(), task.num_classes());
        let gen = TaskGenerator::standard(task, cfg.max_seq_len);
        let data = gen.generate(scale.train_size() + scale.dev_size(), seed);
        let (train, dev) =
            data.split(scale.train_size() as f32 / (scale.train_size() + scale.dev_size()) as f32);

        let opts = TrainOptions {
            epochs: scale.epochs(),
            seed,
            embedding_sparsity: task.paper_embedding_sparsity(),
            encoder_prune: Some((
                edgebert_nn::prune::PruneMethod::Movement,
                task.paper_encoder_sparsity(),
            )),
            ..TrainOptions::default()
        };
        let trainer = Trainer::new(cfg, layout, opts);
        let (mut model, summary) = trainer.run(&train, &dev);

        // Evaluation-time quantization (Fig. 4): FP8 weights and
        // activations with per-layer adaptive exponent bias.
        model.quantize_weights(4);
        model.enable_activation_quant(4);

        // Predictor: trained on the training split's trajectories.
        let train_cache = SweepCache::build(&model, &train);
        let predictor = EntropyPredictor::train(
            &train_cache.entropy_dataset(),
            scale.predictor_epochs(),
            seed,
        );
        let max_h = (task.num_classes() as f32).ln() * 1.05;
        let lut = predictor.to_lut(64, max_h);

        // Calibration on the dev split.
        let cache = SweepCache::build(&model, &dev);
        let drops = [0.01f32, 0.02, 0.05];
        let calib_conv = drops.map(|d| calibrate_conventional(&cache, d));
        let calib_lai = drops.map(|d| calibrate_latency_aware(&cache, &lut, d));

        Self {
            task,
            scale,
            model: Arc::new(model),
            summary,
            train,
            dev,
            cache,
            predictor,
            lut: Arc::new(lut),
            calib_conv,
            calib_lai,
        }
    }

    /// Hardware workload at the paper's ALBERT-base shapes for this task,
    /// optionally with the task's published optimization results applied
    /// (Table 1 spans, Table 3 encoder sparsity).
    pub fn hardware_workload(&self, optimized: bool) -> WorkloadParams {
        crate::engine::task_hardware_workload(self.task, optimized)
    }

    /// An [`EngineBuilder`] preloaded with this task's model, LUT, and
    /// all three calibrated threshold tiers, on the unoptimized
    /// workload. Every engine minted from artifacts goes through here.
    pub fn engine_builder(&self) -> EngineBuilder {
        EngineBuilder::new(Arc::clone(&self.model), Arc::clone(&self.lut)).calibrated_thresholds(
            self.calib_conv.map(|c| c.entropy_threshold),
            self.calib_lai.map(|c| c.entropy_threshold),
        )
    }

    /// Builds an owned inference engine at a default latency target,
    /// defaulting to the 1 %-drop tier on the unoptimized hardware
    /// workload.
    pub fn engine(&self, latency_target_s: f64) -> EdgeBertEngine {
        self.engine_at(latency_target_s, DropTarget::OnePercent, false)
    }

    /// Builds an owned engine with an explicit default drop tier and
    /// workload optimization flag. Requests served by the engine can
    /// still override both per sentence.
    pub fn engine_at(
        &self,
        latency_target_s: f64,
        drop: DropTarget,
        optimized: bool,
    ) -> EdgeBertEngine {
        self.engine_builder()
            .workload(self.hardware_workload(optimized))
            .latency_target(latency_target_s)
            .drop_target(drop)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InferenceMode;

    #[test]
    fn build_test_scale_artifacts() {
        let art = TaskArtifacts::build(Task::Sst2, Scale::Test, 77);
        // Pruning targets hit.
        assert!((art.summary.encoder_sparsity - 0.5).abs() < 0.06);
        assert!((art.summary.embedding_sparsity - 0.6).abs() < 0.06);
        // Model learned something.
        assert!(art.summary.student_accuracy > 0.55);
        // Calibrations are ordered: looser drop ⇒ earlier exits.
        assert!(art.calib_conv[2].avg_exit_layer <= art.calib_conv[0].avg_exit_layer + 1e-4);
        // LAI thresholds track the conventional ones (the paper finds
        // them lower; with a tiny dev set we only require "not wildly
        // higher") and its exits stay within the layer range.
        for i in 0..3 {
            assert!(
                art.calib_lai[i].entropy_threshold <= art.calib_conv[i].entropy_threshold + 0.2,
                "LAI {} vs conv {}",
                art.calib_lai[i].entropy_threshold,
                art.calib_conv[i].entropy_threshold
            );
            assert!(art.calib_lai[i].avg_exit_layer >= 1.0);
            assert!(art.calib_lai[i].avg_predicted_layer <= art.model.num_layers() as f32 + 1e-4);
        }
        // Engine runs end to end.
        let engine = art.engine(100e-3);
        let agg = engine.evaluate(&art.dev, InferenceMode::LatencyAware);
        assert!(agg.avg_energy_j > 0.0);
        assert!(agg.accuracy > 0.4);
    }
}
