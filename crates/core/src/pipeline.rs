//! End-to-end task artifacts: train → quantize → calibrate → predictor.
//!
//! [`TaskArtifacts::build`] runs the paper's full Fig. 4 flow for one
//! task and packages everything the experiments need: the optimized
//! student model (FP8-quantized weights and activations), the sweep
//! cache, the trained entropy predictor and its LUT, and the calibrated
//! thresholds for 1/2/5 % accuracy-drop targets.

use crate::calibrate::{calibrate_conventional, calibrate_latency_aware, Calibration, SweepCache};
use crate::engine::{DropTarget, EdgeBertEngine, EngineBuilder};
use crate::predictor::{EntropyPredictor, PredictorLut};
use edgebert_hw::WorkloadParams;
use edgebert_model::{AlbertConfig, AlbertModel, TrainOptions, Trainer, TrainingSummary};
use edgebert_tasks::{Dataset, Task, TaskGenerator, VocabLayout};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How big to build the artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal sizes for unit/integration tests.
    Test,
    /// The sizes used by the `repro` binary to regenerate the paper's
    /// tables and figures (12-layer, 12-head model on a larger corpus).
    Paper,
}

impl Scale {
    /// Model configuration for a task at this scale.
    pub fn model_config(self, vocab_size: usize, num_classes: usize) -> AlbertConfig {
        match self {
            Scale::Test => AlbertConfig::tiny(vocab_size, num_classes),
            Scale::Paper => AlbertConfig::small(vocab_size, num_classes),
        }
    }

    /// Training-set size.
    pub fn train_size(self) -> usize {
        match self {
            Scale::Test => 72,
            Scale::Paper => 512,
        }
    }

    /// Dev-set size.
    pub fn dev_size(self) -> usize {
        match self {
            Scale::Test => 36,
            Scale::Paper => 176,
        }
    }

    /// Fine-tuning epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Test => 3,
            Scale::Paper => 5,
        }
    }

    /// Predictor training epochs (full-batch Adam steps).
    pub fn predictor_epochs(self) -> usize {
        match self {
            Scale::Test => 150,
            Scale::Paper => 500,
        }
    }
}

/// Everything the experiments need for one task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskArtifacts {
    /// The task.
    pub task: Task,
    /// Scale the artifacts were built at.
    pub scale: Scale,
    /// The optimized student model (quantized weights + activations),
    /// shared so runtimes and engines can hold it without copying.
    pub model: Arc<AlbertModel>,
    /// Training summary (sparsities, spans, accuracies).
    pub summary: TrainingSummary,
    /// Training split.
    pub train: Dataset,
    /// Dev split (used for calibration and evaluation).
    pub dev: Dataset,
    /// Layerwise sweep cache over `dev`.
    pub cache: SweepCache,
    /// The trained entropy predictor.
    pub predictor: EntropyPredictor,
    /// Its distilled LUT, shared like the model.
    pub lut: Arc<PredictorLut>,
    /// Conventional-EE calibrations at 1/2/5 % drops.
    pub calib_conv: [Calibration; 3],
    /// Latency-aware calibrations at 1/2/5 % drops.
    pub calib_lai: [Calibration; 3],
}

/// On-disk envelope for cached artifacts. The version gates stale
/// caches: any change to the artifact layout (or the model internals it
/// transitively serializes) bumps it, and older files rebuild instead
/// of deserializing into garbage.
#[derive(Debug, Serialize, Deserialize)]
struct CachedArtifacts {
    version: u32,
    seed: u64,
    artifacts: TaskArtifacts,
}

/// Bump on any layout change to `TaskArtifacts` or its pointees.
const ARTIFACT_CACHE_VERSION: u32 = 1;

impl TaskArtifacts {
    /// Runs the full pipeline for a task.
    pub fn build(task: Task, scale: Scale, seed: u64) -> Self {
        let layout = VocabLayout::standard();
        let cfg = scale.model_config(layout.vocab_size(), task.num_classes());
        let gen = TaskGenerator::standard(task, cfg.max_seq_len);
        let data = gen.generate(scale.train_size() + scale.dev_size(), seed);
        let (train, dev) =
            data.split(scale.train_size() as f32 / (scale.train_size() + scale.dev_size()) as f32);

        let opts = TrainOptions {
            epochs: scale.epochs(),
            seed,
            embedding_sparsity: task.paper_embedding_sparsity(),
            encoder_prune: Some((
                edgebert_nn::prune::PruneMethod::Movement,
                task.paper_encoder_sparsity(),
            )),
            ..TrainOptions::default()
        };
        let trainer = Trainer::new(cfg, layout, opts);
        let (mut model, summary) = trainer.run(&train, &dev);

        // Evaluation-time quantization (Fig. 4): FP8 weights and
        // activations with per-layer adaptive exponent bias.
        model.quantize_weights(4);
        model.enable_activation_quant(4);

        // Predictor: trained on the training split's trajectories.
        let train_cache = SweepCache::build(&model, &train);
        let predictor = EntropyPredictor::train(
            &train_cache.entropy_dataset(),
            scale.predictor_epochs(),
            seed,
        );
        let max_h = (task.num_classes() as f32).ln() * 1.05;
        let lut = predictor.to_lut(64, max_h);

        // Calibration on the dev split.
        let cache = SweepCache::build(&model, &dev);
        let drops = [0.01f32, 0.02, 0.05];
        let calib_conv = drops.map(|d| calibrate_conventional(&cache, d));
        let calib_lai = drops.map(|d| calibrate_latency_aware(&cache, &lut, d));

        Self {
            task,
            scale,
            model: Arc::new(model),
            summary,
            train,
            dev,
            cache,
            predictor,
            lut: Arc::new(lut),
            calib_conv,
            calib_lai,
        }
    }

    /// The directory the artifact cache lives in: the
    /// `EDGEBERT_ARTIFACT_DIR` environment variable when set, else
    /// `target/edgebert-artifacts` under the workspace root.
    pub fn artifact_dir() -> std::path::PathBuf {
        match std::env::var_os("EDGEBERT_ARTIFACT_DIR") {
            Some(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
            _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/edgebert-artifacts"),
        }
    }

    /// [`build`](Self::build) behind a disk cache keyed by
    /// `(task, scale, seed)` in [`artifact_dir`](Self::artifact_dir):
    /// a hit deserializes in milliseconds instead of retraining, so
    /// `repro --scale paper` and the serving benches pay the training
    /// cost once per key. Any miss — absent, unreadable, corrupt, or
    /// written by an older layout version — falls back to a fresh build
    /// and refreshes the file (best effort: an unwritable cache
    /// directory degrades to plain `build`).
    pub fn cached(task: Task, scale: Scale, seed: u64) -> Self {
        Self::cached_in(&Self::artifact_dir(), task, scale, seed)
    }

    /// [`cached`](Self::cached) against an explicit cache directory.
    pub fn cached_in(dir: &std::path::Path, task: Task, scale: Scale, seed: u64) -> Self {
        let path = dir.join(format!(
            "{}_{}_{seed:#x}.json",
            task.name(),
            match scale {
                Scale::Test => "test",
                Scale::Paper => "paper",
            },
        ));
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(cached) = serde::json::from_str::<CachedArtifacts>(&text) {
                if cached.version == ARTIFACT_CACHE_VERSION
                    && cached.seed == seed
                    && cached.artifacts.task == task
                    && cached.artifacts.scale == scale
                {
                    // Announce hits: the key is (task, scale, seed) +
                    // layout version, NOT the training code, so after
                    // editing trainer/calibration logic a stale hit
                    // would silently report the old code's numbers.
                    // Wipe the directory (or point EDGEBERT_ARTIFACT_DIR
                    // elsewhere) to force retraining.
                    eprintln!("[edgebert] loaded cached artifacts: {}", path.display());
                    return cached.artifacts;
                }
            }
        }
        let artifacts = Self::build(task, scale, seed);
        // Atomic refresh: write a sibling temp file, then rename over
        // the key, so a concurrent reader never sees a torn cache. The
        // temp name carries pid *and* a process-wide counter — two
        // threads of one process refreshing the same key must not
        // interleave writes into one temp file.
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let unique = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let tmp = path.with_extension(format!("tmp.{}.{unique}", std::process::id()));
            std::fs::write(
                &tmp,
                serde::json::to_string(&CachedArtifacts {
                    version: ARTIFACT_CACHE_VERSION,
                    seed,
                    artifacts: artifacts.clone(),
                }),
            )?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(err) = write() {
            eprintln!(
                "warning: could not cache artifacts to {}: {err}",
                path.display()
            );
        }
        artifacts
    }

    /// Hardware workload at the paper's ALBERT-base shapes for this task,
    /// optionally with the task's published optimization results applied
    /// (Table 1 spans, Table 3 encoder sparsity).
    pub fn hardware_workload(&self, optimized: bool) -> WorkloadParams {
        crate::engine::task_hardware_workload(self.task, optimized)
    }

    /// An [`EngineBuilder`] preloaded with this task's model, LUT, and
    /// all three calibrated threshold tiers, on the unoptimized
    /// workload. Every engine minted from artifacts goes through here.
    pub fn engine_builder(&self) -> EngineBuilder {
        EngineBuilder::new(Arc::clone(&self.model), Arc::clone(&self.lut)).calibrated_thresholds(
            self.calib_conv.map(|c| c.entropy_threshold),
            self.calib_lai.map(|c| c.entropy_threshold),
        )
    }

    /// Builds an owned inference engine at a default latency target,
    /// defaulting to the 1 %-drop tier on the unoptimized hardware
    /// workload.
    pub fn engine(&self, latency_target_s: f64) -> EdgeBertEngine {
        self.engine_at(latency_target_s, DropTarget::OnePercent, false)
    }

    /// Builds an owned engine with an explicit default drop tier and
    /// workload optimization flag. Requests served by the engine can
    /// still override both per sentence.
    pub fn engine_at(
        &self,
        latency_target_s: f64,
        drop: DropTarget,
        optimized: bool,
    ) -> EdgeBertEngine {
        self.engine_builder()
            .workload(self.hardware_workload(optimized))
            .latency_target(latency_target_s)
            .drop_target(drop)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{InferenceMode, InferenceRequest};

    #[test]
    fn build_test_scale_artifacts() {
        let art = TaskArtifacts::build(Task::Sst2, Scale::Test, 77);
        // Pruning targets hit.
        assert!((art.summary.encoder_sparsity - 0.5).abs() < 0.06);
        assert!((art.summary.embedding_sparsity - 0.6).abs() < 0.06);
        // Model learned something.
        assert!(art.summary.student_accuracy > 0.55);
        // Calibrations are ordered: looser drop ⇒ earlier exits.
        assert!(art.calib_conv[2].avg_exit_layer <= art.calib_conv[0].avg_exit_layer + 1e-4);
        // LAI thresholds track the conventional ones (the paper finds
        // them lower; with a tiny dev set we only require "not wildly
        // higher") and its exits stay within the layer range.
        for i in 0..3 {
            assert!(
                art.calib_lai[i].entropy_threshold <= art.calib_conv[i].entropy_threshold + 0.2,
                "LAI {} vs conv {}",
                art.calib_lai[i].entropy_threshold,
                art.calib_conv[i].entropy_threshold
            );
            assert!(art.calib_lai[i].avg_exit_layer >= 1.0);
            assert!(art.calib_lai[i].avg_predicted_layer <= art.model.num_layers() as f32 + 1e-4);
        }
        // Engine runs end to end.
        let engine = art.engine(100e-3);
        let agg = engine.evaluate(&art.dev, InferenceMode::LatencyAware);
        assert!(agg.avg_energy_j > 0.0);
        assert!(agg.accuracy > 0.4);
    }

    #[test]
    fn artifact_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "edgebert-artifact-cache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Miss: builds and writes the cache file.
        let built = TaskArtifacts::cached_in(&dir, Task::Sst2, Scale::Test, 0xCAC8E);
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("cache dir created")
            .map(|e| e.expect("entry").path())
            .collect();
        assert_eq!(entries.len(), 1, "one cache file per key: {entries:?}");

        // Hit: loads without rebuilding, and the loaded artifacts are
        // behaviorally identical — same summary and calibrations, and
        // engines minted from them serve bit-identical responses.
        let loaded = TaskArtifacts::cached_in(&dir, Task::Sst2, Scale::Test, 0xCAC8E);
        assert_eq!(loaded.task, built.task);
        assert_eq!(loaded.scale, built.scale);
        assert_eq!(loaded.summary, built.summary);
        assert_eq!(loaded.calib_conv, built.calib_conv);
        assert_eq!(loaded.calib_lai, built.calib_lai);
        assert_eq!(loaded.dev, built.dev);
        let req = InferenceRequest::new(built.dev.examples()[0].tokens.clone());
        assert_eq!(
            loaded.engine(50e-3).serve(&req),
            built.engine(50e-3).serve(&req),
            "cached artifacts must serve bit-identically"
        );

        // A different seed is a different key, not a false hit.
        let other = TaskArtifacts::cached_in(&dir, Task::Sst2, Scale::Test, 0xCAC8F);
        assert!(other.summary.student_accuracy.is_finite()); // built fine
        assert_eq!(
            std::fs::read_dir(&dir).expect("cache dir").count(),
            2,
            "second key gets its own file"
        );

        // Corruption falls back to a rebuild and refreshes the file.
        std::fs::write(&entries[0], "{not json").expect("corrupt the cache");
        let rebuilt = TaskArtifacts::cached_in(&dir, Task::Sst2, Scale::Test, 0xCAC8E);
        assert_eq!(rebuilt.summary, built.summary);
        let reread = TaskArtifacts::cached_in(&dir, Task::Sst2, Scale::Test, 0xCAC8E);
        assert_eq!(reread.summary, built.summary);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
