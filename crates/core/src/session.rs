//! Resumable, layer-granular inference sessions: the execution seam
//! under every serving layer.
//!
//! EdgeBERT's whole design divides per-sentence work at transformer
//! *layer boundaries* — the entropy early-exit check and the DVFS
//! re-budgeting are both layer-granular — yet the engine used to expose
//! only monolithic run-to-completion calls, so a long stretched
//! sentence held its accelerator lane for its entire duration while a
//! tight-deadline arrival sat in queue. [`InferenceSession`] is the
//! redesign: [`EdgeBertEngine::begin`](crate::engine::EdgeBertEngine::begin)
//! opens a session over one request, and each [`step`](InferenceSession::step)
//! executes exactly one encoder layer — software forward (the hidden
//! state lives in the session via
//! [`ForwardSession`](edgebert_model::ForwardSession)), entropy-exit
//! check, hardware cost accounting — returning a [`StepOutcome`].
//!
//! Sessions are **checkpointable**: [`park`](InferenceSession::park)
//! closes the open hardware segment at the current layer boundary and
//! freezes the session (hidden state + accounting); a later
//! [`resume`](InferenceSession::resume) charges the parked wall time
//! against the sentence's slack, and the next step re-runs the DVFS
//! decision against the *remaining* cycles and *remaining* budget —
//! paper §5.2's `Freq_opt = N_cycles / (T − T_elapsed)` with everything
//! already burned (queueing, completed layers, parked time) deducted.
//! This is what makes the `edgebert::server` lanes preemptive: a worker
//! can park a stretched sentence between layers, serve a tighter
//! arrival, and resume the parked session with a freshly tightened
//! operating point.
//!
//! **Bit-identity contract.** A session driven to completion without
//! ever parking reproduces the monolithic paths
//! ([`run_base`](crate::engine::EdgeBertEngine::run_base),
//! [`run_conventional_ee_at`](crate::engine::EdgeBertEngine::run_conventional_ee_at),
//! [`run_latency_aware_queued`](crate::engine::EdgeBertEngine::run_latency_aware_queued))
//! bit for bit — those methods are now thin drive-to-completion
//! wrappers over a session, and `tests/backend_equivalence.rs` pins
//! them against a direct-hardware oracle reproducing the pre-redesign
//! arithmetic. Within one uninterrupted segment the accounting
//! recomputes the segment cost from its start layer at every step
//! (rather than summing per-layer deltas), so the final numbers are
//! exactly the monolithic single-`run_layers` expressions. Parking is
//! *not* free: closing a segment commits its cost, and the resume
//! segment charges a fresh nominal→decision transition — the modeled
//! hardware really does return toward nominal while preempted.

use crate::backend::OperatingPoint;
use crate::engine::{
    deadline_met, DropTarget, EdgeBertEngine, InferenceMode, InferenceResponse, SentenceResult,
};
use crate::overload::Degradation;
use crate::telemetry::{SpanRecorder, TraceEventKind};
use edgebert_model::ForwardSession;
use edgebert_tensor::stats::argmax;
use serde::Serialize;

/// Version tag written into every serialized [`SessionCheckpoint`].
/// Bumped when the envelope's field set or semantics change; a reader
/// rejects versions it does not understand instead of resuming a
/// session it would mis-account.
pub const SESSION_CHECKPOINT_VERSION: u32 = 2;

/// What one [`InferenceSession::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A layer ran; more remain. The session sits at a layer boundary —
    /// the natural preemption point — and can be parked or stepped.
    Continue,
    /// A layer ran and its off-ramp entropy crossed the exit threshold:
    /// the sentence is complete via early exit.
    Exited,
    /// A layer ran and the session hit its forced stop (the LAI
    /// forecast layer, or full depth for Base/EE): complete.
    Done,
}

/// Lifecycle of an [`InferenceSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Steppable: the next [`step`](InferenceSession::step) runs a
    /// layer.
    Running,
    /// Checkpointed at a layer boundary; call
    /// [`resume`](InferenceSession::resume) before stepping again.
    Parked,
    /// The sentence finished; [`result`](InferenceSession::result) and
    /// [`response`](InferenceSession::response) are available.
    Complete,
}

/// The open hardware segment: a run of layers executed at one operating
/// point since the last DVFS decision.
#[derive(Debug, Clone)]
struct SegmentRun {
    /// Operating point the segment runs at.
    point: OperatingPoint,
    /// Transition cost (nominal → point) charged when the segment
    /// closes, seconds.
    transition_s: f64,
    /// First layer (1-based) of the segment.
    start_layer: usize,
}

/// One sentence's resumable execution state: hidden-state checkpoint,
/// per-layer hardware accounting, and the request's service levels.
///
/// Created by [`EdgeBertEngine::begin`](crate::engine::EdgeBertEngine::begin)
/// (request-scoped, sanitized) or the engine's `run_*` wrappers
/// (raw-token paths). Sessions own an engine clone (`Arc` bumps on the
/// shared weights and backend), so they are `Send + 'static` — they can
/// be parked in a shared lane and resumed by a different worker thread.
#[derive(Debug, Clone)]
pub struct InferenceSession {
    engine: EdgeBertEngine,
    mode: InferenceMode,
    latency_target_s: f64,
    drop: DropTarget,
    /// Queueing delay stamped at begin (already sanitized), seconds.
    elapsed_queue_s: f64,
    /// Queue-pressure cap on the DVFS stretch window (seconds from
    /// dispatch), `None` when uncapped. See
    /// [`InferenceRequest::with_stretch_cap_s`](crate::engine::InferenceRequest::with_stretch_cap_s).
    stretch_cap_s: Option<f64>,
    /// Power envelope on every DVFS decision (watts of sustained
    /// draw), `None` when unconstrained. See
    /// [`InferenceRequest::with_envelope_w`](crate::engine::InferenceRequest::with_envelope_w).
    envelope_w: Option<f64>,
    /// Software forward state (the hidden-state checkpoint).
    fwd: ForwardSession,
    num_layers: usize,
    /// Entropy threshold of this mode/tier (unused by Base).
    et: f32,
    state: SessionState,
    /// Layers completed (1-based count).
    layers_done: usize,
    /// LAI forecast exit layer, set after layer 1.
    predicted: Option<usize>,
    /// Accounting already committed (fixed costs + closed segments).
    committed_latency_s: f64,
    committed_energy_j: f64,
    /// The open segment, if a DVFS decision is active.
    segment: Option<SegmentRun>,
    /// Operating point reported in the result (last decision, or
    /// nominal before any).
    point: OperatingPoint,
    /// Feasibility of the last DVFS decision *against the real target*
    /// (a stretch cap never flips a met deadline to missed).
    feasible: bool,
    /// Wall time spent parked, charged against the slack, seconds.
    parked_s: f64,
    /// Times this session was parked.
    preemptions: u32,
    /// Accuracy-tier notches the overload ladder degraded this session
    /// by (0 on every default path).
    degraded_notches: u8,
    result: Option<SentenceResult>,
    terminal: StepOutcome,
    /// Attached trace recorder (serving layers attach one when
    /// telemetry is on; `None` — and zero overhead — otherwise).
    /// Survives park/steal/resume in-process, but is *not*
    /// checkpointed: a restored session starts untraced.
    trace: Option<SpanRecorder>,
}

impl InferenceSession {
    /// Opens a session. `tokens` are used as given (the engine's
    /// [`serve`](crate::engine::EdgeBertEngine::serve)/[`begin`](crate::engine::EdgeBertEngine::begin)
    /// sanitize wire requests before reaching here).
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_queue_s` is negative or non-finite (the
    /// request-scoped entry points sanitize stamps first).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine: EdgeBertEngine,
        tokens: &[u32],
        mode: InferenceMode,
        latency_target_s: f64,
        drop: DropTarget,
        elapsed_queue_s: f64,
        stretch_cap_s: Option<f64>,
        envelope_w: Option<f64>,
        degradation: Degradation,
    ) -> Self {
        assert!(
            elapsed_queue_s.is_finite() && elapsed_queue_s >= 0.0,
            "queueing delay must be finite and non-negative, got {elapsed_queue_s}"
        );
        // Overload degradation: drop the tier (saturating) and scale
        // the exit threshold up, so sentences exit earlier and the lane
        // drains. The NONE path below is byte-for-byte the pre-overload
        // computation — no multiply, no tier change — preserving the
        // bit-identity contract for every default caller.
        let drop = if degradation.is_none() {
            drop
        } else {
            degradation.applied_to(drop)
        };
        let base_et = match mode {
            InferenceMode::ConventionalEe => engine.thresholds(drop).conventional,
            _ => engine.thresholds(drop).latency_aware,
        };
        let et = if degradation.is_none() {
            base_et
        } else {
            base_et * degradation.entropy_scale
        };
        let fwd = engine.model().begin_forward(tokens);
        let num_layers = engine.model().num_layers();
        let point = engine.backend().nominal();
        Self {
            engine,
            mode,
            latency_target_s,
            drop,
            elapsed_queue_s,
            stretch_cap_s,
            envelope_w,
            fwd,
            num_layers,
            et,
            state: SessionState::Running,
            layers_done: 0,
            predicted: None,
            committed_latency_s: 0.0,
            committed_energy_j: 0.0,
            segment: None,
            point,
            feasible: true,
            parked_s: 0.0,
            preemptions: 0,
            degraded_notches: degradation.tier_notches,
            result: None,
            terminal: StepOutcome::Done,
            trace: None,
        }
    }

    /// Attach a telemetry recorder: subsequent steps emit
    /// `SegmentStart`/`EntropyExit`/`Parked` span events. Observation
    /// only — attaching a recorder never changes the arithmetic.
    pub fn attach_trace(&mut self, recorder: SpanRecorder) {
        self.trace = Some(recorder);
    }

    /// The attached telemetry recorder, if any.
    pub fn trace(&self) -> Option<&SpanRecorder> {
        self.trace.as_ref()
    }

    #[inline]
    fn emit(&self, kind: TraceEventKind) {
        if let Some(recorder) = &self.trace {
            recorder.emit(kind);
        }
    }

    /// The session's lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Whether the sentence finished.
    pub fn is_complete(&self) -> bool {
        self.state == SessionState::Complete
    }

    /// Layers executed so far.
    pub fn layers_done(&self) -> usize {
        self.layers_done
    }

    /// The LAI forecast exit layer (None before layer 1, and for
    /// Base/EE sessions).
    pub fn predicted_layer(&self) -> Option<usize> {
        self.predicted
    }

    /// The inference scheme this session runs.
    pub fn mode(&self) -> InferenceMode {
        self.mode
    }

    /// The latency target the session is served under, seconds.
    pub fn latency_target_s(&self) -> f64 {
        self.latency_target_s
    }

    /// The accuracy-drop tier the session is served under.
    pub fn drop_target(&self) -> DropTarget {
        self.drop
    }

    /// Times this session was parked.
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    /// Accuracy-tier notches the overload ladder degraded this session
    /// by at open time (0 on every default path). The notch count is
    /// the *requested* degradation — the entropy-threshold scaling
    /// applies even when the tier itself saturates at the loosest
    /// calibration.
    pub fn degraded_notches(&self) -> u8 {
        self.degraded_notches
    }

    /// The power envelope this session's DVFS decisions are clamped
    /// under, watts (`None` when fleet energy budgeting is off or the
    /// lane is unconstrained). Stamped at begin from the request and
    /// carried through park/steal/checkpoint — a migrated session keeps
    /// the allowance of the lane that admitted it.
    pub fn envelope_w(&self) -> Option<f64> {
        self.envelope_w
    }

    /// Total wall time charged as parked, seconds.
    pub fn parked_s(&self) -> f64 {
        self.parked_s
    }

    /// Total elapsed non-compute time charged against the deadline:
    /// the queueing stamp plus parked time, seconds.
    pub fn elapsed_charged_s(&self) -> f64 {
        self.elapsed_queue_s + self.parked_s
    }

    /// The modeled hardware latency accounted so far (committed costs
    /// plus the open segment), seconds. Monotone in steps; equals the
    /// final `result.latency_s` once complete. Service-time emulation
    /// paces worker sleeps against this.
    pub fn modeled_latency_s(&self) -> f64 {
        if let Some(r) = &self.result {
            return r.latency_s;
        }
        match self.mode {
            InferenceMode::LatencyAware => {
                self.committed_latency_s
                    + self.segment.as_ref().map_or(0.0, |seg| {
                        let layers = self.layers_done + 1 - seg.start_layer;
                        seg.transition_s
                            + self.engine.backend().run_layers(layers, &seg.point).seconds
                    })
            }
            _ => {
                if self.layers_done == 0 {
                    return 0.0;
                }
                let b = self.engine.backend();
                b.sentence_overhead().seconds
                    + b.run_layers_nominal(self.layers_done).seconds
                    + b.embedding_read_cost().seconds
            }
        }
    }

    /// Executes one layer segment: software layer, entropy-exit check,
    /// and hardware accounting (with a fresh DVFS decision if the
    /// session is at a segment start — the first stretched layer, or
    /// the first step after a resume).
    ///
    /// Idempotent once complete (returns the terminal outcome again).
    ///
    /// # Panics
    ///
    /// Panics if the session is parked — [`resume`](Self::resume)
    /// first.
    pub fn step(&mut self) -> StepOutcome {
        assert!(
            self.state != SessionState::Parked,
            "resume a parked session before stepping it"
        );
        if self.state == SessionState::Complete {
            return self.terminal;
        }
        match self.mode {
            InferenceMode::LatencyAware => self.step_latency_aware(),
            InferenceMode::ConventionalEe => self.step_conventional_ee(),
            InferenceMode::Base => self.step_base(),
        }
    }

    /// Checkpoints the session at the current layer boundary: the open
    /// hardware segment is closed (its cost committed) and the session
    /// freezes until [`resume`](Self::resume). Returns `false` (and
    /// does nothing) when the session is already complete or parked.
    pub fn park(&mut self) -> bool {
        if self.state != SessionState::Running {
            return false;
        }
        if let Some(seg) = self.segment.take() {
            let layers = self.layers_done + 1 - seg.start_layer;
            let cost = self.engine.backend().run_layers(layers, &seg.point);
            self.committed_latency_s += seg.transition_s + cost.seconds;
            self.committed_energy_j += cost.energy_j;
        }
        self.state = SessionState::Parked;
        self.preemptions += 1;
        self.emit(TraceEventKind::Parked);
        true
    }

    /// Resumes a parked session, charging `parked_wall_s` of real time
    /// against the sentence's remaining slack (non-finite or negative
    /// values sanitize to zero). The next step re-runs the DVFS
    /// decision against the remaining cycles and remaining budget.
    ///
    /// # Panics
    ///
    /// Panics if the session is not parked.
    pub fn resume(&mut self, parked_wall_s: f64) {
        assert!(
            self.state == SessionState::Parked,
            "only a parked session can be resumed"
        );
        if parked_wall_s.is_finite() && parked_wall_s > 0.0 {
            self.parked_s += parked_wall_s;
        }
        self.state = SessionState::Running;
    }

    /// Serializes a *parked* session into a [`SessionCheckpoint`] — the
    /// versioned envelope that carries everything but the engine
    /// handles, so the session can cross a process boundary and be
    /// rebound with [`EdgeBertEngine::restore_session`]. Returns `None`
    /// unless the session is parked: a running session has an open
    /// hardware segment (park first, committing it), and a complete one
    /// has nothing left to migrate.
    pub fn checkpoint(&self) -> Option<SessionCheckpoint> {
        if self.state != SessionState::Parked {
            return None;
        }
        debug_assert!(self.segment.is_none(), "park committed the open segment");
        Some(SessionCheckpoint {
            version: SESSION_CHECKPOINT_VERSION,
            mode: self.mode,
            latency_target_s: self.latency_target_s,
            drop: self.drop,
            elapsed_queue_s: self.elapsed_queue_s,
            stretch_cap_s: self.stretch_cap_s,
            envelope_w: self.envelope_w,
            fwd: self.fwd.clone(),
            num_layers: self.num_layers,
            et: self.et,
            layers_done: self.layers_done,
            predicted: self.predicted,
            committed_latency_s: self.committed_latency_s,
            committed_energy_j: self.committed_energy_j,
            point: self.point,
            feasible: self.feasible,
            parked_s: self.parked_s,
            preemptions: self.preemptions,
            degraded_notches: self.degraded_notches,
        })
    }

    /// Rebinds a checkpoint to `engine`, reconstructing the parked
    /// session ([`EdgeBertEngine::restore_session`] is the public entry
    /// point). The restored session is [`SessionState::Parked`]: call
    /// [`resume`](Self::resume) — charging the wall time the envelope
    /// spent in transit — before stepping, exactly as for an in-process
    /// parked session.
    ///
    /// # Panics
    ///
    /// Panics when `engine`'s model depth differs from the
    /// checkpointing engine's — the layer accounting would be
    /// meaningless. (Equality of depth is a necessary sanity check, not
    /// a full compatibility proof: bit-identical resumption requires
    /// restoring onto an engine built from the same model, LUT, and
    /// backend configuration.)
    pub(crate) fn restore(engine: EdgeBertEngine, checkpoint: SessionCheckpoint) -> Self {
        assert_eq!(
            checkpoint.num_layers,
            engine.model().num_layers(),
            "checkpoint depth does not match the restoring engine's model"
        );
        Self {
            engine,
            mode: checkpoint.mode,
            latency_target_s: checkpoint.latency_target_s,
            drop: checkpoint.drop,
            elapsed_queue_s: checkpoint.elapsed_queue_s,
            stretch_cap_s: checkpoint.stretch_cap_s,
            envelope_w: checkpoint.envelope_w,
            fwd: checkpoint.fwd,
            num_layers: checkpoint.num_layers,
            et: checkpoint.et,
            state: SessionState::Parked,
            layers_done: checkpoint.layers_done,
            predicted: checkpoint.predicted,
            committed_latency_s: checkpoint.committed_latency_s,
            committed_energy_j: checkpoint.committed_energy_j,
            segment: None,
            point: checkpoint.point,
            feasible: checkpoint.feasible,
            parked_s: checkpoint.parked_s,
            preemptions: checkpoint.preemptions,
            degraded_notches: checkpoint.degraded_notches,
            result: None,
            terminal: StepOutcome::Done,
            trace: None,
        }
    }

    /// The finished sentence result, once complete.
    pub fn result(&self) -> Option<&SentenceResult> {
        self.result.as_ref()
    }

    /// Drives the session to completion (without ever parking) and
    /// returns the sentence result — the monolithic `run_*` semantics.
    pub fn run_to_completion(mut self) -> SentenceResult {
        while !self.is_complete() {
            self.step();
        }
        self.result.expect("complete session carries its result")
    }

    /// The serving-layer response, once complete: the result wrapped
    /// with the resolved service levels, with Base/EE verdicts
    /// re-judged against the target (the bare results keep the paper's
    /// unbounded-baseline semantics, exactly like
    /// [`serve`](crate::engine::EdgeBertEngine::serve)). All verdicts
    /// charge the queueing stamp *and* any parked time.
    pub fn response(&self) -> Option<InferenceResponse> {
        let mut result = self.result.clone()?;
        if self.mode != InferenceMode::LatencyAware {
            result.deadline_met = deadline_met(
                self.elapsed_charged_s() + result.latency_s,
                self.latency_target_s,
            );
        }
        Some(InferenceResponse {
            result,
            latency_target_s: self.latency_target_s,
            drop_target: self.drop,
        })
    }

    /// Drives the session to completion and returns the response.
    pub fn finish(mut self) -> InferenceResponse {
        while !self.is_complete() {
            self.step();
        }
        self.response()
            .expect("complete session carries its result")
    }

    fn complete(&mut self, result: SentenceResult, outcome: StepOutcome) -> StepOutcome {
        self.result = Some(result);
        self.terminal = outcome;
        self.state = SessionState::Complete;
        outcome
    }

    /// Algorithm 2, one layer at a time. Layer 1 runs at nominal and
    /// charges the fixed costs (wake, embedding read, overhead); each
    /// later layer runs inside a stretched segment whose operating
    /// point was decided at the segment start. Uninterrupted, the
    /// arithmetic is exactly the monolithic
    /// `run_latency_aware_queued` path, bit for bit.
    fn step_latency_aware(&mut self) -> StepOutcome {
        let backend = self.engine.backend();
        if self.layers_done == 0 {
            let nominal = backend.nominal();
            self.emit(TraceEventKind::SegmentStart {
                layer: 1,
                voltage: nominal.voltage as f64,
                freq_hz: nominal.freq_hz,
            });
            let overhead = backend.sentence_overhead();
            let wake_s = backend.wake_transition_s();
            let embed = backend.embedding_read_cost();
            let layer1 = backend.run_layers(1, &nominal);
            let (_, h1) = self.engine.model().forward_next_layer(&mut self.fwd);
            self.layers_done = 1;
            self.committed_latency_s = overhead.seconds + wake_s + embed.seconds + layer1.seconds;
            self.committed_energy_j = overhead.energy_j + embed.energy_j + layer1.energy_j;
            self.point = nominal;
            if h1 < self.et {
                let latency_s = self.committed_latency_s;
                let result = SentenceResult {
                    mode: InferenceMode::LatencyAware,
                    exit_layer: 1,
                    predicted_layer: Some(1),
                    prediction: argmax(self.fwd.logits_at(1)),
                    latency_s,
                    energy_j: self.committed_energy_j,
                    voltage: nominal.voltage,
                    freq_hz: nominal.freq_hz,
                    deadline_met: deadline_met(
                        self.elapsed_charged_s() + latency_s,
                        self.latency_target_s,
                    ),
                };
                self.predicted = Some(1);
                self.emit(TraceEventKind::EntropyExit { layer: 1 });
                return self.complete(result, StepOutcome::Exited);
            }
            self.predicted = Some(
                self.engine
                    .lut()
                    .predict_exit_layer(h1, self.et)
                    .clamp(2, self.num_layers),
            );
            return StepOutcome::Continue;
        }

        let predicted = self.predicted.expect("forecast set after layer 1");
        if self.segment.is_none() {
            self.open_segment(predicted);
        }
        let (layer, h) = self.engine.model().forward_next_layer(&mut self.fwd);
        self.layers_done = layer;
        let exited = h < self.et;
        if exited || layer == predicted {
            let seg = self.segment.take().expect("segment opened above");
            let layers = layer + 1 - seg.start_layer;
            let cost = self.engine.backend().run_layers(layers, &seg.point);
            // Mirrors the monolithic `latency += transition_s +
            // segment.seconds` (one addition of the summed pair).
            let latency_s = self.committed_latency_s + (seg.transition_s + cost.seconds);
            let energy_j = self.committed_energy_j + cost.energy_j;
            self.committed_latency_s = latency_s;
            self.committed_energy_j = energy_j;
            let result = SentenceResult {
                mode: InferenceMode::LatencyAware,
                exit_layer: layer,
                predicted_layer: Some(predicted),
                prediction: argmax(self.fwd.logits_at(layer)),
                latency_s,
                energy_j,
                voltage: seg.point.voltage,
                freq_hz: seg.point.freq_hz,
                deadline_met: self.feasible
                    && deadline_met(self.elapsed_charged_s() + latency_s, self.latency_target_s),
            };
            let outcome = if exited {
                self.emit(TraceEventKind::EntropyExit {
                    layer: layer as u32,
                });
                StepOutcome::Exited
            } else {
                StepOutcome::Done
            };
            return self.complete(result, outcome);
        }
        StepOutcome::Continue
    }

    /// Opens a stretched segment: a fresh DVFS decision against the
    /// *remaining* cycles and *remaining* budget — everything already
    /// burned (queueing stamp, parked time, completed layers, and the
    /// worst-case nominal→floor transition reserve) deducted. With a
    /// queue-pressure stretch cap, the compute window is additionally
    /// clamped to the cap, while feasibility for the deadline verdict
    /// is still judged against the request's own budget. With a power
    /// envelope, every decision additionally clamps its operating
    /// point under the lane's allowance
    /// ([`InferenceBackend::decide_capped`](crate::backend::InferenceBackend::decide_capped)),
    /// and feasibility is judged *honestly at the clamped clock* — an
    /// envelope that forbids the deadline-meeting point marks the
    /// decision infeasible instead of silently re-pricing the budget.
    fn open_segment(&mut self, predicted: usize) {
        let backend = self.engine.backend();
        let remaining_cycles =
            self.engine.layer_cycles() * (predicted as u64 - self.layers_done as u64);
        let elapsed = self.elapsed_charged_s();
        let remaining_budget =
            self.latency_target_s - self.committed_latency_s - backend.floor_transition_s();
        // The envelope applies to every decision below identically; the
        // `None` path makes exactly the pre-energy calls, bit for bit.
        let envelope = self.envelope_w;
        let decide = |cycles: u64, window: f64, burned: f64| match envelope {
            None => backend.decide(cycles, window, burned),
            Some(w) => backend.decide_capped(cycles, window, burned, w),
        };
        let (decision, feasible) = match self.stretch_cap_s {
            None => {
                let d = decide(remaining_cycles, remaining_budget, elapsed);
                let feasible = d.feasible;
                (d, feasible)
            }
            Some(cap) => {
                // The capped window from dispatch: the sentence may not
                // stretch past the queue-pressure cap even when its own
                // deadline would allow it. Parked time advanced the
                // wall clock past dispatch, so it shrinks the capped
                // window too — a preempted-then-resumed sentence must
                // not stretch into the slack the cap reserved for its
                // successor.
                let window = (self.latency_target_s - elapsed).min(cap - self.parked_s)
                    - self.committed_latency_s
                    - backend.floor_transition_s();
                let d = decide(remaining_cycles, window, 0.0);
                // Feasibility (and thus the deadline verdict) is the
                // request's own: a cap that forces nominal must not
                // mark an otherwise-met deadline as missed. (Under an
                // envelope the judgment stays at the *clamped* clock
                // against that same real budget.)
                let feasible = decide(remaining_cycles, remaining_budget, elapsed).feasible;
                (d, feasible)
            }
        };
        let transition_s = backend.transition_s(&decision);
        self.emit(TraceEventKind::SegmentStart {
            layer: (self.layers_done + 1) as u32,
            voltage: decision.voltage as f64,
            freq_hz: decision.freq_hz,
        });
        self.point = decision;
        self.feasible = feasible;
        self.segment = Some(SegmentRun {
            point: decision,
            transition_s,
            start_layer: self.layers_done + 1,
        });
    }

    /// Algorithm 1, one layer at a time, always at nominal V/F. The
    /// completed result is the monolithic `run_conventional_ee_at`
    /// expression (`overhead + run_layers(exit) + embed`), bit for bit.
    fn step_conventional_ee(&mut self) -> StepOutcome {
        self.emit_nominal_segment_start();
        let (layer, h) = self.engine.model().forward_next_layer(&mut self.fwd);
        self.layers_done = layer;
        let exited = h < self.et;
        if exited || layer == self.num_layers {
            let result = self.nominal_result(InferenceMode::ConventionalEe, layer);
            let outcome = if exited {
                self.emit(TraceEventKind::EntropyExit {
                    layer: layer as u32,
                });
                StepOutcome::Exited
            } else {
                StepOutcome::Done
            };
            return self.complete(result, outcome);
        }
        StepOutcome::Continue
    }

    /// Full-depth inference at nominal V/F, one layer at a time.
    fn step_base(&mut self) -> StepOutcome {
        self.emit_nominal_segment_start();
        let (layer, _) = self.engine.model().forward_next_layer(&mut self.fwd);
        self.layers_done = layer;
        if layer == self.num_layers {
            let result = self.nominal_result(InferenceMode::Base, layer);
            return self.complete(result, StepOutcome::Done);
        }
        StepOutcome::Continue
    }

    /// Base/EE sessions run one nominal-V/F segment end to end: emit
    /// its `SegmentStart` before the first layer (traced sessions
    /// only; the nominal lookup is skipped entirely otherwise).
    fn emit_nominal_segment_start(&self) {
        if self.trace.is_some() && self.layers_done == 0 {
            let nominal = self.engine.backend().nominal();
            self.emit(TraceEventKind::SegmentStart {
                layer: 1,
                voltage: nominal.voltage as f64,
                freq_hz: nominal.freq_hz,
            });
        }
    }

    /// The nominal-V/F result shared by Base and conventional EE:
    /// `deadline_met` is `true` because these are the paper's
    /// *unbounded* baselines ([`response`](Self::response) re-judges
    /// against the target, exactly like `serve`).
    fn nominal_result(&self, mode: InferenceMode, exit: usize) -> SentenceResult {
        let backend = self.engine.backend();
        let nominal = backend.nominal();
        let overhead = backend.sentence_overhead();
        let cost = backend.run_layers(exit, &nominal);
        let embed = backend.embedding_read_cost();
        SentenceResult {
            mode,
            exit_layer: exit,
            predicted_layer: None,
            prediction: argmax(self.fwd.logits_at(exit)),
            latency_s: overhead.seconds + cost.seconds + embed.seconds,
            energy_j: overhead.energy_j + cost.energy_j + embed.energy_j,
            voltage: nominal.voltage,
            freq_hz: nominal.freq_hz,
            deadline_met: true,
        }
    }
}

/// A serialized parked session: everything an [`InferenceSession`]
/// carries except its engine handles, under a version tag.
///
/// Produced by [`InferenceSession::checkpoint`] (parked sessions only —
/// park commits the open hardware segment, so the envelope never has to
/// describe a half-priced segment) and consumed by
/// [`EdgeBertEngine::restore_session`]. The payload is the hidden-state
/// checkpoint ([`ForwardSession`]), the entropy/exit bookkeeping
/// (threshold, forecast layer, layers done), and the DVFS slack
/// accounting (queueing stamp, stretch cap, committed latency/energy,
/// operating point, parked time) — enough that
/// `park → serialize → restore → resume` is bit-identical to
/// `park → resume` on the same engine configuration: the serde tree
/// round-trips every float exactly (f64 via exact formatting, f32
/// losslessly through f64).
///
/// Deserialization is strict about the version — an envelope written by
/// an incompatible build is rejected with a typed error rather than
/// resumed with mis-accounted slack — and validates the layer
/// bookkeeping against the embedded hidden state.
#[derive(Debug, Clone, Serialize)]
pub struct SessionCheckpoint {
    /// Envelope version ([`SESSION_CHECKPOINT_VERSION`] when produced
    /// by this build).
    version: u32,
    mode: InferenceMode,
    latency_target_s: f64,
    drop: DropTarget,
    elapsed_queue_s: f64,
    stretch_cap_s: Option<f64>,
    envelope_w: Option<f64>,
    fwd: ForwardSession,
    num_layers: usize,
    et: f32,
    layers_done: usize,
    predicted: Option<usize>,
    committed_latency_s: f64,
    committed_energy_j: f64,
    point: OperatingPoint,
    feasible: bool,
    parked_s: f64,
    preemptions: u32,
    degraded_notches: u8,
}

impl SessionCheckpoint {
    /// The envelope's version tag.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Layers the checkpointed session had completed.
    pub fn layers_done(&self) -> usize {
        self.layers_done
    }

    /// Model depth of the engine that produced the checkpoint (restore
    /// asserts the restoring engine matches).
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Wall time the session had been charged as parked when it was
    /// checkpointed, seconds.
    pub fn parked_s(&self) -> f64 {
        self.parked_s
    }
}

// Hand-written (not derived): the version gate must run before any
// field is interpreted, and the layer bookkeeping is validated against
// the embedded hidden state so a tampered or truncated envelope fails
// here, with a typed error, instead of panicking inside a worker.
impl serde::Deserialize for SessionCheckpoint {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let version: u32 = serde::Deserialize::from_value(value.field("version")?)?;
        if version != SESSION_CHECKPOINT_VERSION {
            return Err(serde::Error::new(format!(
                "unsupported session checkpoint version {version} \
                 (this build reads version {SESSION_CHECKPOINT_VERSION})"
            )));
        }
        let checkpoint = Self {
            version,
            mode: serde::Deserialize::from_value(value.field("mode")?)?,
            latency_target_s: serde::Deserialize::from_value(value.field("latency_target_s")?)?,
            drop: serde::Deserialize::from_value(value.field("drop")?)?,
            elapsed_queue_s: serde::Deserialize::from_value(value.field("elapsed_queue_s")?)?,
            stretch_cap_s: serde::Deserialize::from_value(value.field("stretch_cap_s")?)?,
            envelope_w: serde::Deserialize::from_value(value.field("envelope_w")?)?,
            fwd: serde::Deserialize::from_value(value.field("fwd")?)?,
            num_layers: serde::Deserialize::from_value(value.field("num_layers")?)?,
            et: serde::Deserialize::from_value(value.field("et")?)?,
            layers_done: serde::Deserialize::from_value(value.field("layers_done")?)?,
            predicted: serde::Deserialize::from_value(value.field("predicted")?)?,
            committed_latency_s: serde::Deserialize::from_value(
                value.field("committed_latency_s")?,
            )?,
            committed_energy_j: serde::Deserialize::from_value(value.field("committed_energy_j")?)?,
            point: serde::Deserialize::from_value(value.field("point")?)?,
            feasible: serde::Deserialize::from_value(value.field("feasible")?)?,
            parked_s: serde::Deserialize::from_value(value.field("parked_s")?)?,
            preemptions: serde::Deserialize::from_value(value.field("preemptions")?)?,
            degraded_notches: serde::Deserialize::from_value(value.field("degraded_notches")?)?,
        };
        if checkpoint.layers_done != checkpoint.fwd.layers_done() {
            return Err(serde::Error::new(format!(
                "checkpoint layer bookkeeping ({}) disagrees with its hidden state ({})",
                checkpoint.layers_done,
                checkpoint.fwd.layers_done()
            )));
        }
        if checkpoint.layers_done > checkpoint.num_layers {
            return Err(serde::Error::new(format!(
                "checkpoint claims {} of {} layers done",
                checkpoint.layers_done, checkpoint.num_layers
            )));
        }
        if !(checkpoint.elapsed_queue_s.is_finite() && checkpoint.elapsed_queue_s >= 0.0) {
            return Err(serde::Error::new(
                "checkpoint queueing stamp must be finite and non-negative",
            ));
        }
        if !(checkpoint.parked_s.is_finite() && checkpoint.parked_s >= 0.0) {
            return Err(serde::Error::new(
                "checkpoint parked time must be finite and non-negative",
            ));
        }
        Ok(checkpoint)
    }
}

// Parked sessions live in shared server lanes and are resumed by
// whichever shard frees up first.
const _: () = {
    const fn assert_send<T: Send + 'static>() {}
    assert_send::<InferenceSession>();
};
