//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform sampling of the
//! primitive types via [`Rng::gen`], and [`Rng::gen_range`] over
//! half-open ranges. The generator is SplitMix64 — statistically strong
//! enough for the workspace's Monte-Carlo experiments and property
//! tests, and bit-reproducible run to run, which is all the
//! reproduction requires. It is **not** the upstream StdRng stream, and
//! it is not cryptographically secure.

use std::ops::Range;

/// Seedable generators (shim of `rand::rngs`).
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x1B873593CC9E2D51u64,
            };
            let _ = crate::RngCore::next_u64(&mut rng);
            rng
        }
    }
}

/// Raw 64-bit output source.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their natural domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` endpoints.
pub trait UniformSample: Sized {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span / 2^64, negligible for the spans
                // used in this workspace (all far below 2^32).
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f32::sample(rng)
    }
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Sampling convenience methods (shim of the `rand::Rng` extension
/// trait).
pub trait Rng: RngCore {
    /// Uniform sample of a primitive type over its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        // All values of a small range are reachable.
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
