//! Offline shim for `proptest`, sufficient for this workspace.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest API its property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! [`Just`], numeric-range strategies, tuple strategies, and
//! [`collection::vec`]. Two deliberate simplifications against upstream:
//!
//! * **Deterministic cases** — inputs are derived from a hash of the
//!   test's module path, name, and case index, so failures reproduce
//!   exactly without a persisted regression file;
//! * **No shrinking** — a failing case reports its inputs verbatim.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-case random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the rng for one test case from its identity.
    pub fn for_case(module: &str, test: &str, case: u32) -> Self {
        // FNV-1a over the identity, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module.bytes().chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        self.next_u64() % n
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds the produced value into `f` to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                // Float rounding can land exactly on `end`; keep the
                // half-open contract.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` resolves, as with upstream
    /// proptest's prelude.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Property-test entry macro (shim of `proptest::proptest!`).
///
/// Each declared test runs `cases` deterministic inputs; a failed
/// `prop_assert!`/`prop_assert_eq!` aborts the case with its inputs in
/// the panic message, and `prop_assume!` skips the case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::for_case(module_path!(), stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", $arg));
                            s.push('\n');
                        )+
                        s
                    };
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}\ninputs:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            message,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f32..2.5, z in 0u64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0.0f32..1.0, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn combinators_compose(
            pair in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
                (Just((r, c)), prop::collection::vec(0.0f32..1.0, r * c))
            })
        ) {
            let ((r, c), v) = pair;
            prop_assert_eq!(v.len(), r * c);
        }

        #[test]
        fn assume_skips_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("m", "t", 3);
        let mut b = crate::TestRng::for_case("m", "t", 3);
        let mut c = crate::TestRng::for_case("m", "t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
