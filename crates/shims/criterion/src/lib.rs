//! Offline shim for `criterion`, sufficient for this workspace.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal wall-clock harness with criterion's spelling: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up, then timed over enough iterations to fill a short
//! measurement window; the mean ns/iter is printed. There is no
//! statistical analysis, HTML report, or baseline comparison — the
//! benches double as smoke-runs of the experiment drivers, which is what
//! the repro workflow needs.

// analyzer: wall-clock-module reason="a benchmark harness exists to read the wall clock; measured ns/iter is the product, not a determinism hazard"

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timing loop handed to every benchmark closure.
pub struct Bencher {
    iters_hint: u64,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run once and estimate the per-iteration cost.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        // Fill a ~50 ms window, clamped by the sample-size hint.
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, self.iters_hint as u128) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.last_ns_per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's rendering.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(label: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters_hint: sample_size.max(1),
        last_ns_per_iter: 0.0,
    };
    f(&mut b);
    let ns = b.last_ns_per_iter;
    if ns >= 1e6 {
        println!("{label:<50} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{label:<50} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{label:<50} {:>12.1} ns/iter", ns);
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 100, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Caps the iteration count used per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` that runs benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| b.iter(|| n * 2));
        g.finish();
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
