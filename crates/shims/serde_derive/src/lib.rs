//! Derive macros for the vendored `serde` shim.
//!
//! Supports the item shapes this workspace serializes: structs with
//! named fields (as ordered maps keyed by field name) and enums with
//! unit variants (as their variant-name string). Anything else gets a
//! `compile_error!` pointing here rather than a silent wrong impl.
//!
//! Implemented directly over `proc_macro::TokenStream` (no `syn`/
//! `quote`, which are unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Serialize impl parses")
        }
        Ok(Item::Enum { name, variants }) => {
            let arms = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Serialize impl parses")
        }
        Err(msg) => error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,"))
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Deserialize impl parses")
        }
        Ok(Item::Enum { name, variants }) => {
            let arms = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error::new(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::Error::new(format!(\n\
                                 \"expected {name} variant string, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated Deserialize impl parses")
        }
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error stream parses")
}

/// Parses a derive input item into its name and field/variant lists.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name = None;

    while let Some(tree) = tokens.next() {
        match tree {
            // Outer attributes arrive as `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(ident) => {
                let text = ident.to_string();
                match text.as_str() {
                    "pub" => {
                        // Skip a possible `pub(crate)` scope group.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        kind = Some(if text == "struct" { "struct" } else { "enum" });
                        match tokens.next() {
                            Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                            other => return Err(format!("expected item name, found {other:?}")),
                        }
                        break;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    let kind = kind.ok_or("derive input is not a struct or enum")?;
    let name = name.ok_or("item has no name")?;

    // Generics are unsupported (and unused by this workspace).
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic item `{name}`"
            ));
        }
    }

    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "serde shim derive does not support unit/tuple struct `{name}`"
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive does not support tuple struct `{name}`"
                ))
            }
            Some(_) => {}
            None => return Err(format!("item `{name}` has no body")),
        }
    };

    if kind == "struct" {
        parse_named_fields(body.stream(), &name).map(|fields| Item::Struct { name, fields })
    } else {
        parse_unit_variants(body.stream(), &name).map(|variants| Item::Enum { name, variants })
    }
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: TokenStream, item: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("unexpected token in fields of `{item}`: {tree}"));
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{}` of `{item}`, found {other:?}",
                    fields.last().expect("just pushed")
                ))
            }
        }
        // Consume the type up to the next top-level comma. Generic
        // angle-bracket depth must be tracked: `Vec<(f64, f32)>` has
        // commas inside.
        let mut depth = 0i32;
        for tree in tokens.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Extracts variant names from an enum body, requiring unit variants.
fn parse_unit_variants(body: TokenStream, item: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            return Err(format!("unexpected token in variants of `{item}`: {tree}"));
        };
        variants.push(variant.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive supports unit enum variants only; \
                     `{item}::{}` carries data",
                    variants.last().expect("just pushed")
                ))
            }
            Some(other) => return Err(format!("unexpected token after variant: {other}")),
        }
    }
    Ok(variants)
}
