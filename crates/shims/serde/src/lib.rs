//! Offline shim for `serde`, sufficient for this workspace.
//!
//! The build environment has no network access, so the workspace vendors
//! a compact serialization layer with the same spelling as serde:
//! `#[derive(Serialize, Deserialize)]` (provided by the sibling
//! `serde_derive` proc-macro crate), plus a [`json`] module for
//! round-tripping through text.
//!
//! Architecture: types convert to and from a self-describing [`Value`]
//! tree (null / bool / integer / float / string / sequence / map), and
//! the JSON front-end renders or parses that tree. Structs serialize as
//! maps keyed by field name, unit enums as their variant name — the same
//! observable layout serde_json produces for such types, which keeps the
//! request/response wire format stable if the real serde is ever swapped
//! back in.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Self-describing serialized tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; never routed through f64).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map (struct fields in declaration order).
    Map(Vec<(String, Value)>),
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
}

impl Error {
    /// Creates an error with a formatted message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up a field of a map value (struct layout).
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// The value as f64 if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as i128 if it is an integer variant.
    pub fn as_int(&self) -> Option<i128> {
        match *self {
            Value::U64(v) => Some(v as i128),
            Value::I64(v) => Some(v as i128),
            // Accept integral floats: JSON readers may hand back 3.0.
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => Some(v as i128),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion back from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_int()
                    .ok_or_else(|| Error::new(format!("expected integer, found {value:?}")))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_int()
                    .ok_or_else(|| Error::new(format!("expected integer, found {value:?}")))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::new(format!("expected number, found {value:?}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of {N}, found {len} items")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// `Arc` serializes transparently as its pointee (upstream serde's
// `rc` feature semantics): shared ownership is a runtime artifact, not
// part of the wire format. Deserializing allocates a fresh Arc, so
// values that were one allocation before a round-trip come back as
// independent ones — fine for this workspace's read-only shares
// (models, LUTs).
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected {}-tuple, found {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&o.to_value()).unwrap(), None);
        let t = ("x".to_string(), 2.5f64, 3u64);
        assert_eq!(<(String, f64, u64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(String::from_value(&Value::Bool(true)).is_err());
        assert!(Value::Null.field("x").is_err());
    }
}
