//! JSON rendering and parsing for the [`Value`](crate::Value) tree.
//!
//! The emitted text is ordinary JSON (struct fields in declaration
//! order, unit enum variants as strings), so serialized requests and
//! responses are readable and diffable in test output.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes any [`Serialize`] type to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    out
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps round-trip precision for f64.
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no non-finite numbers; emit a spec-valid
                // escape object (never a bare string, so string *values*
                // holding "NaN"/"inf" stay representable). "$f64" is not
                // a legal Rust identifier, so no derived struct field
                // can collide with it.
                out.push_str(if v.is_nan() {
                    "{\"$f64\":\"NaN\"}"
                } else if *v > 0.0 {
                    "{\"$f64\":\"inf\"}"
                } else {
                    "{\"$f64\":\"-inf\"}"
                });
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_seq(),
            b'{' => self.parse_map(),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // A high surrogate must pair with a low one
                            // (standard encoders escape non-BMP chars as
                            // UTF-16 surrogate pairs).
                            let scalar = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::new("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at pos - 1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (after the `\u`).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']', found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Self::fold_escape_object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}', found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    /// Collapses the writer's non-finite-float escape object
    /// (`{"$f64":"NaN"|"inf"|"-inf"}`) back into its number; every
    /// other map passes through untouched.
    fn fold_escape_object(entries: Vec<(String, Value)>) -> Value {
        if let [(key, Value::Str(marker))] = entries.as_slice() {
            if key == "$f64" {
                match marker.as_str() {
                    "NaN" => return Value::F64(f64::NAN),
                    "inf" => return Value::F64(f64::INFINITY),
                    "-inf" => return Value::F64(f64::NEG_INFINITY),
                    _ => {}
                }
            }
        }
        Value::Map(entries)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("invalid token at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::I64(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x)).unwrap(), x);
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b\"q\\".into(), -2.0)];
        let text = to_string(&v);
        assert_eq!(from_str::<Vec<(String, f64)>>(&text).unwrap(), v);
        let o: Option<u32> = Some(3);
        assert_eq!(from_str::<Option<u32>>(&to_string(&o)).unwrap(), o);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        assert_eq!(
            from_str::<f64>(&to_string(&f64::INFINITY)).unwrap(),
            f64::INFINITY
        );
        assert_eq!(
            from_str::<f64>(&to_string(&f64::NEG_INFINITY)).unwrap(),
            f64::NEG_INFINITY
        );
        assert!(from_str::<f64>(&to_string(&f64::NAN)).unwrap().is_nan());
        // The escape form is itself spec-valid JSON.
        assert_eq!(to_string(&f64::INFINITY), r#"{"$f64":"inf"}"#);
        // The escape encoding must not shadow real string values.
        for s in ["NaN", "inf", "-inf"] {
            let text = to_string(&s.to_string());
            assert_eq!(from_str::<String>(&text).unwrap(), s, "wire {text}");
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Standard ASCII-escaping encoders emit non-BMP chars as
        // UTF-16 surrogate pairs.
        assert_eq!(
            from_str::<String>(r#""\ud83d\ude00""#).unwrap(),
            "\u{1F600}"
        );
        assert_eq!(from_str::<String>(r#""\u00e9""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀 raw""#).unwrap(), "😀 raw");
        assert!(from_str::<String>(r#""\ud83d""#).is_err()); // unpaired high
        assert!(from_str::<String>(r#""\ud83dA""#).is_err()); // bad low
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(
            from_str::<Vec<u32>>(" [ 1 , 2 ,\n3 ] ").unwrap(),
            vec![1, 2, 3]
        );
        assert!(from_str::<u32>("[1] trailing").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
