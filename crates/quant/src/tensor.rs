//! Tensor-level quantization with per-tensor (per-layer) exponent bias.

use crate::format::Fp8Format;
use edgebert_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A matrix quantized to FP8 with an AdaptivFloat per-tensor exponent
/// bias.
///
/// The raw bytes are exposed so the eNVM subsystem can map them onto
/// ReRAM cells and inject faults into the *stored representation* rather
/// than the decoded floats.
///
/// # Example
///
/// ```
/// use edgebert_quant::QuantizedTensor;
/// use edgebert_tensor::Matrix;
///
/// let w = Matrix::from_rows(&[&[0.5, -2.0, 8.0]]);
/// let q = QuantizedTensor::quantize(&w, 4);
/// let back = q.dequantize();
/// assert!((back.get(0, 2) - 8.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    format: Fp8Format,
    bytes: Vec<u8>,
}

impl QuantizedTensor {
    /// Quantizes a matrix using `exp_bits` exponent bits and the optimal
    /// per-tensor bias (chosen so the largest magnitude in the tensor is
    /// representable without saturation — the AdaptivFloat rule).
    pub fn quantize(m: &Matrix, exp_bits: u8) -> Self {
        let bias = Self::optimal_bias(m, exp_bits);
        Self::quantize_with_bias(m, exp_bits, bias)
    }

    /// Quantizes with an explicit bias.
    pub fn quantize_with_bias(m: &Matrix, exp_bits: u8, bias: i32) -> Self {
        let format = Fp8Format::new(exp_bits, bias);
        let bytes = m.as_slice().iter().map(|&x| format.encode(x)).collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            format,
            bytes,
        }
    }

    /// The AdaptivFloat bias for a tensor: aligns the top of the exponent
    /// range with the tensor's largest magnitude.
    pub fn optimal_bias(m: &Matrix, exp_bits: u8) -> i32 {
        let max_abs = m.as_slice().iter().map(|x| x.abs()).fold(0.0f32, f32::max);
        if max_abs == 0.0 {
            return 7;
        }
        let e_top = (1i32 << exp_bits) - 1;
        e_top - max_abs.log2().floor() as i32
    }

    /// Decodes back to a dense matrix.
    pub fn dequantize(&self) -> Matrix {
        let data = self.bytes.iter().map(|&b| self.format.decode(b)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// The stored format (including the chosen bias).
    pub fn format(&self) -> Fp8Format {
        self.format
    }

    /// Logical shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw FP8 bytes (row-major).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw bytes — the fault-injection surface.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Root-mean-square quantization error against a reference matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn rmse_against(&self, reference: &Matrix) -> f32 {
        let deq = self.dequantize();
        edgebert_tensor::stats::rmse(deq.as_slice(), reference.as_slice())
    }
}

/// Quantize-dequantizes a matrix in one step (the evaluation-time
/// transform applied to all weights and activations in Fig. 4).
pub fn fake_quantize(m: &Matrix, exp_bits: u8) -> Matrix {
    QuantizedTensor::quantize(m, exp_bits).dequantize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgebert_tensor::Rng;

    #[test]
    fn round_trip_preserves_shape_and_zeros() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, -4.0]]);
        let q = QuantizedTensor::quantize(&m, 4);
        let back = q.dequantize();
        assert_eq!(back.shape(), (2, 2));
        assert_eq!(back.get(0, 0), 0.0);
        assert_eq!(back.get(1, 0), 0.0);
        // Bitmask-relevant invariant: zeros stay exactly zero.
        assert_eq!(back.sparsity(), m.sparsity());
    }

    #[test]
    fn adaptive_bias_avoids_saturation() {
        let mut rng = Rng::seed_from(1);
        // Weights with a large outlier, as in NLP layers (paper §3.4).
        let mut m = rng.gaussian_matrix(8, 8, 0.1);
        m.set(0, 0, 37.0);
        let q = QuantizedTensor::quantize(&m, 4);
        let back = q.dequantize();
        // The outlier must be representable within normal FP8 error.
        assert!((back.get(0, 0) - 37.0).abs() / 37.0 < 0.07);
    }

    #[test]
    fn per_tensor_bias_beats_fixed_bias_on_small_values() {
        let mut rng = Rng::seed_from(2);
        let m = rng.gaussian_matrix(16, 16, 0.01);
        let adaptive = QuantizedTensor::quantize(&m, 4);
        let fixed = QuantizedTensor::quantize_with_bias(&m, 4, 7);
        assert!(adaptive.rmse_against(&m) < fixed.rmse_against(&m));
    }

    #[test]
    fn fp8_143_keeps_relative_error_small_on_gaussian() {
        let mut rng = Rng::seed_from(3);
        let m = rng.gaussian_matrix(32, 32, 1.0);
        let q = QuantizedTensor::quantize(&m, 4);
        // Typical relative RMS error for 3 mantissa bits is a few percent.
        let rel = q.rmse_against(&m) / (m.frobenius_norm() / (m.len() as f32).sqrt());
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn exponent_search_prefers_4_bits_for_wide_range() {
        // With a wide dynamic range (layer-norm'd NLP weights plus
        // outliers more than an order of magnitude larger, §3.4), 4
        // exponent bits beat both 2 (small weights flush to zero once the
        // adaptive bias is anchored to the outliers) and 6 (only one
        // mantissa bit left → coarse steps). Metric: mean relative error
        // over non-zero entries, with flush-to-zero counting as 100%.
        let mut rng = Rng::seed_from(4);
        let mut m = rng.gaussian_matrix(64, 64, 0.01);
        // Heavy tail, ~2^10 above the bulk.
        for i in 0..64 {
            let v = (4.0 + rng.uniform() * 6.0) * if rng.chance(0.5) { 1.0 } else { -1.0 };
            m.set(i, i, v);
        }
        let err = |bits: u8| -> f32 {
            let deq = QuantizedTensor::quantize(&m, bits).dequantize();
            let mut total = 0.0f32;
            let mut n = 0usize;
            for (&x, &q) in m.as_slice().iter().zip(deq.as_slice()) {
                if x != 0.0 {
                    total += (((q - x) / x).abs()).min(1.0);
                    n += 1;
                }
            }
            total / n as f32
        };
        let e4 = err(4);
        assert!(e4 < err(2), "4-bit {e4} vs 2-bit {}", err(2));
        assert!(e4 < err(6), "4-bit {e4} vs 6-bit {}", err(6));
    }

    #[test]
    fn bytes_mut_allows_fault_injection() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let mut q = QuantizedTensor::quantize(&m, 4);
        let before = q.dequantize();
        q.bytes_mut()[0] ^= 0x80; // flip the sign bit
        let after = q.dequantize();
        assert_eq!(after.get(0, 0), -before.get(0, 0));
        assert_eq!(after.get(0, 1), before.get(0, 1));
    }

    #[test]
    fn fake_quantize_matches_quantize_dequantize() {
        let mut rng = Rng::seed_from(5);
        let m = rng.gaussian_matrix(4, 4, 1.0);
        assert_eq!(
            fake_quantize(&m, 4),
            QuantizedTensor::quantize(&m, 4).dequantize()
        );
    }
}
