//! 8-bit floating-point quantization (AdaptivFloat-style).
//!
//! The paper quantizes all ALBERT weights and activations to 8-bit
//! *floating point* — not integers — because layer normalization leaves
//! NLP weight distributions with a dynamic range integers cannot cover
//! (§3.4). The chosen format is 1 sign + 4 exponent + 3 mantissa bits,
//! with the exponent bias selected **per layer** to match each tensor's
//! range (the AdaptivFloat scheme of Tambe et al.).
//!
//! This crate provides:
//!
//! * [`Fp8Format`] — parametric sign/exponent/mantissa split with encode
//!   and decode (round-to-nearest, saturating, subnormal support);
//! * [`QuantizedTensor`] — a matrix quantized with a per-tensor exponent
//!   bias, exposing its raw bytes for eNVM storage and fault injection;
//! * [`fixed`] — 16-bit fixed-point helpers modelling the SFU datapath
//!   (paper §7.4: "All the computations in the SFU are in 16-bit
//!   fixed-point format").

pub mod fixed;
pub mod format;
pub mod tensor;

pub use format::Fp8Format;
pub use tensor::QuantizedTensor;
