//! Parametric 8-bit floating-point formats.

use serde::{Deserialize, Serialize};

/// An 8-bit floating-point format: 1 sign bit, `exp_bits` exponent bits,
/// and `7 - exp_bits` mantissa bits, plus a tensor-level exponent bias.
///
/// The paper's search found 4 exponent bits optimal for ALBERT
/// ([`Fp8Format::edgebert`]), i.e. a 1-4-3 split.
///
/// # Example
///
/// ```
/// use edgebert_quant::Fp8Format;
///
/// let fmt = Fp8Format::edgebert(0);
/// let byte = fmt.encode(0.75);
/// let back = fmt.decode(byte);
/// assert!((back - 0.75).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fp8Format {
    exp_bits: u8,
    /// Exponent bias. Stored exponent `e` represents `2^(e - bias)`.
    bias: i32,
}

impl Fp8Format {
    /// Creates a format with the given exponent width and bias.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= exp_bits <= 6` (at least one mantissa bit).
    pub fn new(exp_bits: u8, bias: i32) -> Self {
        assert!((1..=6).contains(&exp_bits), "exp_bits must be in 1..=6");
        Self { exp_bits, bias }
    }

    /// The paper's 1-4-3 format with a custom bias.
    pub fn edgebert(bias: i32) -> Self {
        Self::new(4, bias)
    }

    /// Exponent field width in bits.
    pub fn exp_bits(&self) -> u8 {
        self.exp_bits
    }

    /// Mantissa field width in bits.
    pub fn mantissa_bits(&self) -> u8 {
        7 - self.exp_bits
    }

    /// The exponent bias.
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// Returns a copy with a different bias (AdaptivFloat per-layer bias).
    pub fn with_bias(self, bias: i32) -> Self {
        Self { bias, ..self }
    }

    /// Largest representable magnitude.
    pub fn max_value(&self) -> f32 {
        let e_top = (1 << self.exp_bits) - 1;
        let m_bits = self.mantissa_bits() as i32;
        let frac = 2.0 - 2.0f32.powi(-m_bits);
        frac * 2.0f32.powi(e_top - self.bias)
    }

    /// Smallest positive normal magnitude.
    pub fn min_normal(&self) -> f32 {
        2.0f32.powi(1 - self.bias)
    }

    /// Smallest positive subnormal magnitude.
    pub fn min_subnormal(&self) -> f32 {
        2.0f32.powi(1 - self.bias - self.mantissa_bits() as i32)
    }

    /// Encodes an `f32` to a byte: round-to-nearest, saturating at
    /// [`Fp8Format::max_value`], flushing below half the minimum
    /// subnormal to zero. NaN encodes as zero.
    pub fn encode(&self, x: f32) -> u8 {
        if x == 0.0 || x.is_nan() {
            return 0;
        }
        let sign: u8 = if x < 0.0 { 0x80 } else { 0 };
        let a = x.abs();
        let m_bits = self.mantissa_bits() as i32;
        let m_max = (1u32 << m_bits) - 1;
        let e_top = (1i32 << self.exp_bits) - 1;

        if a.is_infinite() || a >= self.max_value() {
            // Saturate.
            return sign | ((e_top as u8) << self.mantissa_bits()) | (m_max as u8);
        }
        let e_unb = a.log2().floor() as i32;
        let e_stored = e_unb + self.bias;
        if e_stored <= 0 {
            // Subnormal: value = m/2^M * 2^(1 - bias)
            let scale = 2.0f32.powi(1 - self.bias - m_bits);
            let m = (a / scale).round() as u32;
            if m == 0 {
                return sign; // flushed to (signed) zero
            }
            if m > m_max {
                // Rounded up into the smallest normal.
                return sign | (1 << self.mantissa_bits());
            }
            return sign | (m as u8);
        }
        // Normal: value = (1 + m/2^M) * 2^(e_stored - bias)
        let frac = a / 2.0f32.powi(e_unb) - 1.0;
        let mut m = (frac * (m_max + 1) as f32).round() as u32;
        let mut e = e_stored;
        if m > m_max {
            m = 0;
            e += 1;
            if e > e_top {
                return sign | ((e_top as u8) << self.mantissa_bits()) | (m_max as u8);
            }
        }
        sign | ((e as u8) << self.mantissa_bits()) | (m as u8)
    }

    /// Decodes a byte back to `f32`.
    pub fn decode(&self, byte: u8) -> f32 {
        let m_bits = self.mantissa_bits() as i32;
        let m_mask = (1u8 << m_bits) - 1;
        let sign = if byte & 0x80 != 0 { -1.0f32 } else { 1.0 };
        let e = ((byte & 0x7f) >> m_bits) as i32;
        let m = (byte & m_mask) as f32;
        let m_scale = 2.0f32.powi(-m_bits);
        if e == 0 {
            sign * m * m_scale * 2.0f32.powi(1 - self.bias)
        } else {
            sign * (1.0 + m * m_scale) * 2.0f32.powi(e - self.bias)
        }
    }

    /// Quantization (encode-decode) of a single value.
    pub fn quantize(&self, x: f32) -> f32 {
        self.decode(self.encode(x))
    }
}

impl Default for Fp8Format {
    /// The paper's 1-4-3 format with an IEEE-like bias of 7.
    fn default() -> Self {
        Self::edgebert(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trips() {
        let fmt = Fp8Format::default();
        assert_eq!(fmt.encode(0.0), 0);
        assert_eq!(fmt.decode(0), 0.0);
        assert_eq!(fmt.quantize(-0.0), 0.0);
    }

    #[test]
    fn sign_symmetry() {
        let fmt = Fp8Format::default();
        for &x in &[0.1f32, 1.0, 3.5, 100.0] {
            assert_eq!(fmt.quantize(-x), -fmt.quantize(x));
        }
    }

    #[test]
    fn exact_powers_of_two_round_trip() {
        let fmt = Fp8Format::edgebert(7);
        for e in -5..5 {
            let x = 2.0f32.powi(e);
            assert_eq!(fmt.quantize(x), x, "2^{e}");
        }
    }

    #[test]
    fn relative_error_bound_for_normals() {
        // With 3 mantissa bits the relative quantization error of a normal
        // value is at most 2^-4 = 6.25%.
        let fmt = Fp8Format::edgebert(7);
        let mut x = fmt.min_normal() * 1.01;
        while x < fmt.max_value() * 0.99 {
            let q = fmt.quantize(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 0.0625 + 1e-4, "x={x} q={q} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn saturation_at_max() {
        let fmt = Fp8Format::edgebert(7);
        let max = fmt.max_value();
        assert_eq!(fmt.quantize(max * 100.0), max);
        assert_eq!(fmt.quantize(f32::INFINITY), max);
        assert_eq!(fmt.quantize(-f32::INFINITY), -max);
    }

    #[test]
    fn subnormals_are_represented() {
        let fmt = Fp8Format::edgebert(7);
        let tiny = fmt.min_subnormal();
        assert!(fmt.quantize(tiny) > 0.0);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(fmt.quantize(tiny * 0.49), 0.0);
    }

    #[test]
    fn nan_encodes_to_zero() {
        let fmt = Fp8Format::default();
        assert_eq!(fmt.encode(f32::NAN), 0);
    }

    #[test]
    fn bias_shifts_representable_range() {
        // Larger bias covers smaller magnitudes; smaller bias covers
        // larger magnitudes — the AdaptivFloat lever.
        let lo = Fp8Format::edgebert(12);
        let hi = Fp8Format::edgebert(2);
        assert!(lo.max_value() < hi.max_value());
        assert!(lo.min_subnormal() < hi.min_subnormal());
        // 1-4-3 with bias chosen for big weights: can represent >64.
        assert!(hi.max_value() > 1000.0);
    }

    #[test]
    fn quantize_is_idempotent() {
        let fmt = Fp8Format::default();
        let mut x = -300.0f32;
        while x < 300.0 {
            let q = fmt.quantize(x);
            assert_eq!(fmt.quantize(q), q, "x={x}");
            x += 1.7;
        }
    }

    #[test]
    fn monotone_on_sample_grid() {
        let fmt = Fp8Format::default();
        let mut prev = f32::NEG_INFINITY;
        let mut x = -20.0f32;
        while x <= 20.0 {
            let q = fmt.quantize(x);
            assert!(q >= prev, "quantize not monotone at {x}");
            prev = q;
            x += 0.01;
        }
    }

    #[test]
    fn encode_decode_all_bytes_consistent() {
        // Every byte decodes to a value that re-encodes to itself (or an
        // equivalent representation of the same value, e.g. -0).
        let fmt = Fp8Format::edgebert(7);
        for b in 0u16..=255 {
            let b = b as u8;
            let v = fmt.decode(b);
            let b2 = fmt.encode(v);
            assert_eq!(fmt.decode(b2), v, "byte {b:#x} -> {v} -> {b2:#x}");
        }
    }
}
