//! 16-bit fixed-point helpers modelling the SFU datapath.
//!
//! "All the computations in the SFU are in 16-bit fixed-point format"
//! (paper §7.4). The entropy/softmax/layer-norm units therefore work on
//! Q-format values; these helpers let the hardware model check that the
//! numerically-stable formulations stay within a 16-bit budget.

use serde::{Deserialize, Serialize};

/// A Q-format signed 16-bit fixed-point value.
///
/// # Example
///
/// ```
/// use edgebert_quant::fixed::Fixed16;
///
/// let q = Fixed16::from_f32(1.5, 8);
/// assert_eq!(q.to_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fixed16 {
    raw: i16,
    frac_bits: u8,
}

impl Fixed16 {
    /// Converts an `f32` with `frac_bits` fractional bits, saturating.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 15`.
    pub fn from_f32(x: f32, frac_bits: u8) -> Self {
        assert!(frac_bits <= 15, "frac_bits out of range");
        let scaled = x * (1i32 << frac_bits) as f32;
        let raw = scaled.round().clamp(i16::MIN as f32, i16::MAX as f32) as i16;
        Self { raw, frac_bits }
    }

    /// The underlying integer representation.
    pub fn raw(&self) -> i16 {
        self.raw
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Converts back to `f32`.
    pub fn to_f32(&self) -> f32 {
        self.raw as f32 / (1i32 << self.frac_bits) as f32
    }

    /// Saturating addition of two values with the same Q format.
    ///
    /// # Panics
    ///
    /// Panics if the Q formats differ.
    pub fn saturating_add(self, rhs: Fixed16) -> Fixed16 {
        assert_eq!(self.frac_bits, rhs.frac_bits, "Q-format mismatch");
        Fixed16 {
            raw: self.raw.saturating_add(rhs.raw),
            frac_bits: self.frac_bits,
        }
    }

    /// Saturating multiplication (result keeps the same Q format).
    ///
    /// # Panics
    ///
    /// Panics if the Q formats differ.
    pub fn saturating_mul(self, rhs: Fixed16) -> Fixed16 {
        assert_eq!(self.frac_bits, rhs.frac_bits, "Q-format mismatch");
        let wide = (self.raw as i32 * rhs.raw as i32) >> self.frac_bits;
        Fixed16 {
            raw: wide.clamp(i16::MIN as i32, i16::MAX as i32) as i16,
            frac_bits: self.frac_bits,
        }
    }
}

/// Quantizes a slice through the Q-format and returns the worst absolute
/// error — used to verify the SFU's 16-bit budget suffices for entropy
/// values and softmax outputs.
pub fn fixed16_roundtrip_error(xs: &[f32], frac_bits: u8) -> f32 {
    xs.iter()
        .map(|&x| (Fixed16::from_f32(x, frac_bits).to_f32() - x).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_for_representable() {
        let q = Fixed16::from_f32(-3.25, 8);
        assert_eq!(q.to_f32(), -3.25);
        assert_eq!(q.raw(), -832);
    }

    #[test]
    fn saturation_at_bounds() {
        let q = Fixed16::from_f32(1.0e9, 8);
        assert_eq!(q.raw(), i16::MAX);
        let q = Fixed16::from_f32(-1.0e9, 8);
        assert_eq!(q.raw(), i16::MIN);
    }

    #[test]
    fn arithmetic() {
        let a = Fixed16::from_f32(1.5, 10);
        let b = Fixed16::from_f32(2.0, 10);
        assert_eq!(a.saturating_add(b).to_f32(), 3.5);
        assert_eq!(a.saturating_mul(b).to_f32(), 3.0);
    }

    #[test]
    fn mul_saturates() {
        let a = Fixed16::from_f32(30.0, 10);
        let big = a.saturating_mul(a);
        assert_eq!(big.raw(), i16::MAX);
    }

    #[test]
    fn entropy_range_fits_q6_10() {
        // Entropy values lie in [0, ln 3] ≈ [0, 1.1]; softmax probs in
        // [0, 1]. Q6.10 keeps the error below 2^-11.
        let vals: Vec<f32> = (0..100).map(|i| i as f32 * 0.011).collect();
        assert!(fixed16_roundtrip_error(&vals, 10) <= 1.0 / 2048.0 + 1e-7);
    }

    #[test]
    #[should_panic(expected = "Q-format mismatch")]
    fn mixed_q_formats_panic() {
        let a = Fixed16::from_f32(1.0, 8);
        let b = Fixed16::from_f32(1.0, 10);
        let _ = a.saturating_add(b);
    }
}
