//! Property-based tests for FP8 quantization.

use edgebert_quant::tensor::fake_quantize;
use edgebert_quant::{Fp8Format, QuantizedTensor};
use edgebert_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantize_idempotent_any_bias(x in -1e4f32..1e4, bias in -10i32..20, bits in 2u8..6) {
        let fmt = Fp8Format::new(bits, bias);
        let q = fmt.quantize(x);
        prop_assert_eq!(fmt.quantize(q), q);
    }

    #[test]
    fn quantize_preserves_sign_and_bounds(x in -1e4f32..1e4) {
        let fmt = Fp8Format::edgebert(7);
        let q = fmt.quantize(x);
        prop_assert!(q.abs() <= fmt.max_value() + 1e-6);
        prop_assert!(q * x >= 0.0);
    }

    #[test]
    fn quantize_monotone(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let fmt = Fp8Format::edgebert(7);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi));
    }

    #[test]
    fn adaptive_bias_never_saturates_the_max(values in prop::collection::vec(-1e3f32..1e3, 4..64)) {
        prop_assume!(values.iter().any(|v| *v != 0.0));
        let m = Matrix::from_vec(1, values.len(), values.clone());
        let q = QuantizedTensor::quantize(&m, 4);
        let deq = q.dequantize();
        let max_in = values.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        let max_out = deq.as_slice().iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        // The largest magnitude survives within normal FP8 relative error.
        prop_assert!((max_out - max_in).abs() / max_in < 0.07, "{max_in} -> {max_out}");
    }

    #[test]
    fn fake_quantize_keeps_zeros_exact(values in prop::collection::vec(-10.0f32..10.0, 4..64), zero_every in 2usize..5) {
        let mut vals = values.clone();
        for (i, v) in vals.iter_mut().enumerate() {
            if i % zero_every == 0 {
                *v = 0.0;
            }
        }
        let n = vals.len();
        let m = Matrix::from_vec(1, n, vals);
        let q = fake_quantize(&m, 4);
        for (a, b) in m.as_slice().iter().zip(q.as_slice()) {
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0);
            }
        }
        prop_assert_eq!(q.sparsity(), m.sparsity());
    }
}
