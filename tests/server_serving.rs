//! Integration tests for the `edgebert::server` subsystem and the
//! queue-aware slack plumbing: bit-identity with `TaskRuntime::serve`
//! and `DeadlineScheduler::drain`, typed admission errors, graceful
//! shutdown under load, end-to-end slack compression, and the
//! zero-slack property.

use edgebert::engine::{
    DropTarget, EntropyThresholds, InferenceMode, InferenceRequest, InferenceResponse,
};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::{DeadlineScheduler, SchedulerConfig};
use edgebert::server::{Server, ServerConfig, SubmitError};
use edgebert::serving::{MultiTaskRuntime, ServeError, TaskRuntime};
use edgebert_tasks::{Task, TaskGenerator};
use proptest::prelude::*;
use std::sync::OnceLock;

fn runtime() -> &'static MultiTaskRuntime {
    static CELL: OnceLock<MultiTaskRuntime> = OnceLock::new();
    CELL.get_or_init(|| {
        MultiTaskRuntime::from_runtimes([
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5ED0)),
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Qnli, Scale::Test, 0x5ED1)),
        ])
    })
}

fn tokens_for(task: Task, n: usize, seed: u64) -> Vec<Vec<u32>> {
    let rt = runtime().runtime(task).expect("served");
    let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
    gen.generate(n, seed)
        .examples()
        .iter()
        .map(|ex| ex.tokens.clone())
        .collect()
}

fn blind_config() -> ServerConfig {
    ServerConfig {
        queue_aware_slack: false,
        ..ServerConfig::default()
    }
}

/// The acceptance contract: server submissions with zero queueing
/// delay (slack-blind mode pins the stamp to zero) produce responses
/// bit-identical to `TaskRuntime::serve` *and* to a
/// `DeadlineScheduler::drain` of the same submissions. Runs under any
/// `EDGEBERT_THREADS` setting — the CI determinism job forces 1.
#[test]
fn server_responses_match_serve_and_scheduler_drain_bitwise() {
    let rt = runtime();
    let sst = tokens_for(Task::Sst2, 4, 31);
    let qnli = tokens_for(Task::Qnli, 4, 32);
    let submissions: Vec<(Task, InferenceRequest)> = sst
        .iter()
        .map(|t| (Task::Sst2, t.clone()))
        .chain(qnli.iter().map(|t| (Task::Qnli, t.clone())))
        .enumerate()
        .map(|(i, (task, tokens))| {
            let req = InferenceRequest::new(tokens).with_latency_target(25e-3 + 11e-3 * i as f64);
            (task, req)
        })
        .collect();

    // Reference 1: direct serve on each task runtime.
    let direct: Vec<InferenceResponse> = submissions
        .iter()
        .map(|(task, req)| rt.try_serve(*task, req).expect("served task"))
        .collect();

    // Reference 2: the virtual-timeline scheduler.
    let mut sched = DeadlineScheduler::new(rt, SchedulerConfig::default());
    for (task, req) in &submissions {
        sched.submit(*task, req.clone(), 0.0);
    }
    let scheduled: Vec<InferenceResponse> = sched
        .drain()
        .into_iter()
        .map(|r| r.expect("served").response)
        .collect();
    assert_eq!(direct, scheduled);

    // The server, slack-blind, with a sharded pool: same bits.
    let server = Server::start(
        rt,
        ServerConfig {
            shards_per_task: 2,
            ..blind_config()
        },
    );
    let handles: Vec<_> = submissions
        .iter()
        .map(|(task, req)| server.submit(*task, req.clone()).expect("admitted"))
        .collect();
    for (handle, want) in handles.into_iter().zip(&direct) {
        let got = handle.wait().expect("worker alive");
        assert_eq!(
            &got.response, want,
            "server must not change what a sentence computes"
        );
        assert_eq!(got.slack_deducted_s, 0.0);
    }
    let stats = server.shutdown();
    assert_eq!(stats.served(), submissions.len() as u64);
    assert_eq!(stats.rejected(), 0);
}

#[test]
fn admission_errors_are_typed_and_mirror_routing() {
    let rt = runtime();
    let server = Server::start(rt, blind_config());
    let req = InferenceRequest::new(tokens_for(Task::Sst2, 1, 33)[0].clone());

    // Routing failure: same task the typed runtime API reports.
    assert!(matches!(
        server.submit(Task::Mnli, req.clone()),
        Err(SubmitError::TaskNotServed(Task::Mnli))
    ));
    assert_eq!(
        rt.try_serve(Task::Mnli, &req),
        Err(ServeError::TaskNotServed(Task::Mnli))
    );

    // Backpressure: a zero-capacity lane refuses deterministically.
    let full = Server::start(
        rt,
        ServerConfig {
            queue_capacity: 0,
            ..blind_config()
        },
    );
    match full.submit(Task::Sst2, req) {
        Err(SubmitError::QueueFull {
            task: Task::Sst2,
            capacity: 0,
            depth,
            retry_after_hint_s,
        }) => {
            assert_eq!(depth, 0);
            assert!(
                retry_after_hint_s > 0.0 && retry_after_hint_s.is_finite(),
                "the hint is the lane's per-slot drain estimate, got {retry_after_hint_s}"
            );
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(full.shutdown().rejected(), 1);
}

#[test]
fn graceful_shutdown_serves_every_admitted_request() {
    let rt = runtime();
    let server = Server::start(rt, blind_config());
    let mut handles = Vec::new();
    for (i, tokens) in tokens_for(Task::Sst2, 6, 34).into_iter().enumerate() {
        let req = InferenceRequest::new(tokens).with_latency_target(30e-3 + 5e-3 * i as f64);
        handles.push(server.submit(Task::Sst2, req).expect("admitted"));
    }
    for tokens in tokens_for(Task::Qnli, 6, 35) {
        handles.push(
            server
                .submit(Task::Qnli, InferenceRequest::new(tokens))
                .expect("admitted"),
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.served(), 12);
    assert_eq!(stats.queued(), 0);
    assert_eq!(stats.submitted(), 12);
    assert!(stats.violations() <= stats.served());
    // Per-lane split is visible.
    assert_eq!(stats.lane(Task::Sst2).expect("lane").served, 6);
    assert_eq!(stats.lane(Task::Qnli).expect("lane").served, 6);
    // Handles resolve after shutdown: responses were delivered in the
    // drain.
    for handle in handles {
        let resp = handle.wait().expect("worker alive");
        assert!(resp.response.result.energy_j > 0.0);
    }
}

/// End to end through real worker threads with service-time emulation:
/// a burst of escalating-deadline sentences on one strict-threshold
/// lane. Slack-blind, every sentence stretches into its full target
/// and all but the head miss; queue-aware, each compresses to its
/// remaining slack and strictly fewer miss.
#[test]
fn queue_aware_slack_converts_violations_under_real_load() {
    let art = TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5ED2);
    let rt = MultiTaskRuntime::from_runtimes([TaskRuntime::from_builder(
        Task::Sst2,
        art.engine_builder()
            .uniform_thresholds(EntropyThresholds::uniform(0.0))
            .workload(art.hardware_workload(true)),
    )]);
    let toks = tokens_for(Task::Sst2, 5, 36);
    let drain = |queue_aware_slack: bool| -> u64 {
        let server = Server::start(
            &rt,
            ServerConfig {
                queue_aware_slack,
                emulate_service_time: true,
                slack_floor_s: 1e-3,
                ..ServerConfig::default()
            },
        );
        let handles: Vec<_> = toks
            .iter()
            .enumerate()
            .map(|(i, tokens)| {
                let req = InferenceRequest::new(tokens.clone())
                    .with_latency_target(80e-3 * (i + 1) as f64);
                server.submit(Task::Sst2, req).expect("admitted")
            })
            .collect();
        for handle in handles {
            handle.wait().expect("worker alive");
        }
        server.shutdown().violations()
    };
    let blind = drain(false);
    let aware = drain(true);
    assert!(
        aware < blind,
        "queue-aware slack must convert violations: {aware} vs {blind} of {}",
        toks.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The zero-slack property (acceptance): stamping a request with
    /// zero elapsed queue time never changes its response — bit for
    /// bit — so a queue-slack deduction of zero can never flip a
    /// deadline verdict from met to missed. And a *positive* stamp is
    /// one-way: it can only flip verdicts from met to missed, never
    /// missed to met.
    #[test]
    fn zero_queue_slack_never_changes_a_response(
        pick in 0usize..8,
        target_ms in 5.0f64..300.0,
        elapsed_ms in 0.5f64..400.0,
        tier in 0usize..3,
    ) {
        let rt = runtime().runtime(Task::Sst2).expect("served");
        let tokens = tokens_for(Task::Sst2, 8, 37)[pick].clone();
        let drop = DropTarget::all()[tier];
        let req = InferenceRequest::new(tokens)
            .with_latency_target(target_ms * 1e-3)
            .with_drop_target(drop);

        let plain = rt.serve(&req);
        let zero = rt.serve(&req.clone().with_elapsed_queue_s(0.0));
        // The zero stamp must be a no-op, bit for bit.
        prop_assert_eq!(&plain, &zero);

        let queued = rt.serve(&req.clone().with_elapsed_queue_s(elapsed_ms * 1e-3));
        if queued.result.deadline_met {
            prop_assert!(
                plain.result.deadline_met,
                "a queued sentence meeting its deadline implies the unqueued one does"
            );
        }
        // Service levels resolve identically either way.
        prop_assert_eq!(queued.latency_target_s, plain.latency_target_s);
        prop_assert_eq!(queued.drop_target, plain.drop_target);
        prop_assert_eq!(queued.result.exit_layer, plain.result.exit_layer);
    }

    /// Base and conventional-EE responses: the queue stamp never
    /// changes the computation, only the verdict.
    #[test]
    fn queue_stamp_only_moves_the_verdict_for_unbounded_modes(
        target_ms in 1.0f64..100.0,
        elapsed_ms in 0.0f64..200.0,
        mode_pick in 0usize..2,
    ) {
        let rt = runtime().runtime(Task::Qnli).expect("served");
        let tokens = tokens_for(Task::Qnli, 1, 38)[0].clone();
        let mode = if mode_pick == 0 { InferenceMode::Base } else { InferenceMode::ConventionalEe };
        let req = InferenceRequest::new(tokens)
            .with_mode(mode)
            .with_latency_target(target_ms * 1e-3);
        let plain = rt.serve(&req);
        let queued = rt.serve(&req.clone().with_elapsed_queue_s(elapsed_ms * 1e-3));
        prop_assert_eq!(queued.result.latency_s, plain.result.latency_s);
        prop_assert_eq!(queued.result.energy_j, plain.result.energy_j);
        prop_assert_eq!(queued.result.prediction, plain.result.prediction);
        prop_assert_eq!(
            queued.result.deadline_met,
            edgebert::deadline_met(
                elapsed_ms * 1e-3 + plain.result.latency_s,
                plain.latency_target_s
            )
        );
    }
}
