//! Cross-crate property-based tests (proptest) on the invariants the
//! system relies on end to end.

use edgebert_envm::StoredEmbedding;
use edgebert_hw::{AcceleratorConfig, DvfsController};
use edgebert_quant::Fp8Format;
use edgebert_tensor::{entropy, BitmaskMatrix, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitmask encode/decode is lossless for any dense matrix.
    #[test]
    fn bitmask_round_trip(values in prop::collection::vec(-100.0f32..100.0, 1..256)) {
        let cols = 8usize;
        let rows = values.len().div_ceil(cols);
        let mut padded = values.clone();
        padded.resize(rows * cols, 0.0);
        let dense = Matrix::from_vec(rows, cols, padded);
        let sparse = BitmaskMatrix::encode(&dense);
        prop_assert_eq!(sparse.decode(), dense);
    }

    /// FP8 quantization is idempotent and sign-preserving, and the
    /// stored-embedding pipeline (prune mask + FP8) keeps zeros exact
    /// and bounds relative error on normals.
    #[test]
    fn fp8_and_storage_invariants(values in prop::collection::vec(-64.0f32..64.0, 8..64)) {
        let fmt = Fp8Format::edgebert(7);
        for &v in &values {
            let q = fmt.quantize(v);
            prop_assert_eq!(fmt.quantize(q), q);
            prop_assert!(q * v >= 0.0, "sign flip: {} -> {}", v, q);
        }
        let cols = 4usize;
        let rows = values.len() / cols;
        if rows > 0 {
            let dense = Matrix::from_vec(rows, cols, values[..rows * cols].to_vec());
            let stored = StoredEmbedding::encode(&dense, 4);
            let decoded = stored.decode();
            for (a, b) in dense.as_slice().iter().zip(decoded.as_slice()) {
                if *a == 0.0 {
                    prop_assert_eq!(*b, 0.0);
                }
            }
        }
    }

    /// Entropy of any finite logit vector lies in [0, ln k].
    #[test]
    fn entropy_bounds(logits in prop::collection::vec(-30.0f32..30.0, 2..8)) {
        let h = entropy(&logits);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (logits.len() as f32).ln() + 1e-4);
    }

    /// Whenever the DVFS controller reports a feasible decision, running
    /// the remaining cycles at the chosen frequency meets the deadline,
    /// and the chosen voltage supports the chosen frequency.
    #[test]
    fn dvfs_feasible_decisions_meet_deadlines(
        cycles in 1u64..2_000_000_000,
        budget_ms in 1.0f64..500.0,
    ) {
        let ctl = DvfsController::new(AcceleratorConfig::energy_optimal());
        let budget = budget_ms * 1e-3;
        let d = ctl.decide(cycles, budget);
        if d.feasible {
            let finish = cycles as f64 / d.freq_hz;
            prop_assert!(finish <= budget * 1.0001, "{finish} > {budget}");
            prop_assert!(ctl.vf_table().freq_at_voltage(d.voltage) >= d.freq_hz * 0.999);
        } else {
            // Infeasible only when even peak V/F cannot make it.
            prop_assert!(cycles as f64 / 1.0e9 > budget * 0.999);
        }
    }

    /// The voltage grid is respected: every decision lands on a 25 mV
    /// step between 0.5 and 0.8 V.
    #[test]
    fn dvfs_voltages_on_grid(cycles in 1u64..1_000_000_000, budget_ms in 1.0f64..200.0) {
        let ctl = DvfsController::new(AcceleratorConfig::energy_optimal());
        let d = ctl.decide(cycles, budget_ms * 1e-3);
        let steps = (d.voltage - 0.5) / 0.025;
        prop_assert!((steps - steps.round()).abs() < 1e-4, "voltage {} off grid", d.voltage);
        prop_assert!((0.5..=0.8001).contains(&d.voltage));
    }
}
