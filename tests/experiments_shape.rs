//! Integration tests asserting every experiment driver reproduces the
//! *shape* of its table/figure: who wins, by roughly what factor, and
//! where the crossovers fall.

use edgebert::engine::DropTarget;
use edgebert::experiments::{fig10, fig11, fig7, fig8, fig9, table1, table2, table3, table4};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_tasks::Task;
use std::sync::OnceLock;

fn artifacts() -> &'static Vec<TaskArtifacts> {
    static CELL: OnceLock<Vec<TaskArtifacts>> = OnceLock::new();
    CELL.get_or_init(|| {
        vec![
            TaskArtifacts::build(Task::Sst2, Scale::Test, 0x51A),
            TaskArtifacts::build(Task::Qnli, Scale::Test, 0x51B),
        ]
    })
}

#[test]
fn table1_reports_spans_for_every_task() {
    let t = table1::run(artifacts());
    assert_eq!(t.rows.len(), 2);
    for row in &t.rows {
        // Our test-scale model has 4 heads; the embedded paper reference
        // always has ALBERT's 12.
        assert!(!row.spans.is_empty());
        assert_eq!(row.paper_spans.len(), 12);
        // Spans respect the model's maximum.
        assert!(row.spans.iter().all(|&s| (0.0..=16.0).contains(&s)));
        // The paper rows embedded for reference keep their >half-off
        // property.
        let off = row.paper_spans.iter().filter(|&&s| s == 0.0).count();
        assert!(off >= 7);
    }
    let text = table1::render(&t);
    assert!(text.contains("SST-2"));
}

#[test]
fn table2_mlc_ordering_and_specs() {
    let t = table2::run(artifacts(), 10, 12, 0x7AB2);
    assert_eq!(t.cells.len(), 2 * 3);
    for chunk in t.cells.chunks(3) {
        let (slc, mlc2, mlc3) = (&chunk[0], &chunk[1], &chunk[2]);
        // Min accuracy never exceeds the mean.
        for c in chunk {
            assert!(c.min_acc <= c.mean_acc + 1e-4);
        }
        // Fault exposure grows with density: MLC3 sees far more faulted
        // cells than SLC/MLC2.
        assert!(mlc3.mean_faults > mlc2.mean_faults);
        assert!(mlc3.mean_faults > slc.mean_faults);
        // SLC and MLC2 are effectively fault-free at paper rates.
        assert!(slc.mean_faults < 1.0);
        assert!(mlc2.mean_faults < 2.0);
    }
    // Table 2's physical characteristics come through.
    assert_eq!(t.area_density.len(), 3);
    assert!(t.area_density[0].1 > t.area_density[2].1);
    assert!(t.read_latency[2].1 > t.read_latency[0].1);
}

#[test]
fn table2_elevated_error_rates_degrade_accuracy() {
    // Failure-injection sanity: cranking the error rate far above the
    // technology defaults must visibly hurt accuracy.
    use edgebert_envm::{CampaignResult, CellTech, FaultInjector, StoredEmbedding};
    use edgebert_tensor::Rng;
    let art = &artifacts()[0];
    let stored = StoredEmbedding::encode(&art.model.embedding.table.value, 4);
    let mut rng = Rng::seed_from(3);
    let mut eval_model = edgebert_model::AlbertModel::clone(&art.model);
    let clean = art.model.evaluate_accuracy(&art.dev);
    let hot = FaultInjector::new(CellTech::Mlc3).with_error_rate(0.2);
    let result = CampaignResult::run(&stored, &hot, 8, &mut rng, |img| {
        eval_model.embedding.set_table(img.decode());
        eval_model.evaluate_accuracy(&art.dev)
    });
    assert!(
        result.mean < clean - 0.02 || result.min < clean - 0.05,
        "mean {} min {} clean {clean}",
        result.mean,
        result.min
    );
}

#[test]
fn table3_rows_are_complete_and_ordered() {
    let t = table3::run(artifacts());
    assert_eq!(t.rows.len(), 2 * 3);
    for rows in t.rows.chunks(3) {
        // Looser drop targets never exit later.
        assert!(rows[2].conv_avg_exit <= rows[0].conv_avg_exit + 1e-4);
        // Predicted exits are conservative vs actual.
        for r in rows {
            assert!(r.lai_avg_predicted + 1e-4 >= r.lai_avg_actual);
            assert!(r.embedding_sparsity_pct > 50.0);
        }
    }
}

#[test]
fn table4_specs_match_paper() {
    let t = table4::run();
    assert_eq!(t.ldo_response_ns_per_50mv, 3.8);
    assert_eq!(t.adpll_power_mw_at_1ghz, 2.46);
}

#[test]
fn fig7_waveform_tracks_dvfs() {
    let arts = artifacts();
    let art = &arts[0];
    let engine = art.engine_at(50e-3, DropTarget::OnePercent, true);
    let f = fig7::run(art, &engine, 3);
    assert_eq!(f.sentences.len(), 3);
    // The waveform touches both nominal (layer 1) and a scaled level.
    let max_v = f.waveform.iter().map(|(_, v)| *v).fold(0.0f32, f32::max);
    let min_v = f.waveform.iter().map(|(_, v)| *v).fold(1.0f32, f32::min);
    assert!((max_v - 0.8).abs() < 1e-3, "max {max_v}");
    assert!(min_v <= 0.5 + 1e-3, "min {min_v}");
    // Time is monotone.
    for w in f.waveform.windows(2) {
        assert!(w[1].0 >= w[0].0 - 1e-12);
    }
}

#[test]
fn fig8_shape_n16_optimal_and_mgpu_crossover() {
    let f = fig8::run(artifacts());
    // n = 16 is the energy-optimal design under full optimizations.
    for (task, _, _) in &f.mgpu_base {
        assert_eq!(fig8::energy_optimal_n(&f, task), 16, "task {task}");
    }
    // Latency drops 2.2-4.2x per doubling of n.
    let lat = |task: &str, n: usize| {
        f.points
            .iter()
            .find(|p| p.task == task && p.n == n && p.variant == "base")
            .map(|p| p.latency_s)
            .expect("point exists")
    };
    let task = &f.mgpu_base[0].0;
    for w in [2usize, 4, 8, 16].windows(2) {
        let drop = lat(task, w[0]) / lat(task, w[1]);
        assert!((2.2..4.4).contains(&drop), "drop {drop} at n={}", w[1]);
    }
    // The accelerator first beats the mGPU latency at n = 16 (paper:
    // "starts to outperform the mGPU processing time with n = 16").
    let gpu_lat = f.mgpu_base[0].1;
    assert!(lat(task, 8) > gpu_lat);
    assert!(lat(task, 16) < gpu_lat);
    // mGPU energy is ~50x the n=16 optimized accelerator energy.
    let acc_energy = f
        .points
        .iter()
        .find(|p| &p.task == task && p.n == 16 && p.variant == "aas+sparse")
        .map(|p| p.energy_j)
        .expect("point exists");
    let ratio = f.mgpu_base[0].2 / acc_energy;
    assert!(
        (20.0..200.0).contains(&ratio),
        "mGPU/accelerator energy {ratio}"
    );
}

#[test]
fn fig9_lai_saves_energy_within_deadline() {
    let f = fig9::run(artifacts());
    for (task, _, _) in f
        .bars
        .iter()
        .map(|b| (b.task.clone(), 0, 0))
        .collect::<std::collections::BTreeSet<_>>()
    {
        let vs_base = fig9::savings_vs(&f, &task, "base");
        assert!(
            vs_base > 1.3,
            "{task}: LAI saves only {vs_base:.2}x vs Base"
        );
        let vs_ee = fig9::savings_vs(&f, &task, "ee");
        assert!(
            vs_ee >= 1.0,
            "{task}: LAI must not cost more than EE ({vs_ee:.2}x)"
        );
    }
    // No deadline misses anywhere in the sweep.
    for b in &f.bars {
        assert_eq!(b.miss_rate, 0.0, "{} {} missed deadlines", b.task, b.scheme);
    }
}

#[test]
fn fig10_and_fig11_shapes() {
    let f10 = fig10::run();
    let mac = f10
        .breakdown
        .iter()
        .find(|r| r.name == "MACs")
        .expect("MAC row");
    assert!(mac.latency_frac > 0.85);
    assert!(mac.energy_frac > 0.93);
    assert!((f10.total_area_mm2 - 1.39).abs() < 0.01);

    let f11 = fig11::run();
    assert!(f11.latency_advantage > 30.0);
    assert!(f11.energy_advantage > 5_000.0);
}
