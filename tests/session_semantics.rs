//! Integration tests for the resumable-session execution API and the
//! preemptive server lanes built on it: park/resume accounting, the
//! fresh DVFS re-decision against remaining slack, queue-pressure
//! stretch caps, and the end-to-end contract that a tight arrival
//! preempts a stretched long job with both deadlines judged correctly.
//!
//! (The bit-identity of *uninterrupted* sessions against the
//! pre-redesign monolithic paths is pinned by
//! `tests/backend_equivalence.rs`, including a 4-task × 3-mode
//! proptest.)

use edgebert::calibrate::SweepCache;
use edgebert::engine::{
    deadline_met, EngineBuilder, EntropyThresholds, InferenceMode, InferenceRequest,
};
use edgebert::predictor::EntropyPredictor;
use edgebert::server::{PreemptionPolicy, Server, ServerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert::session::{SessionState, StepOutcome};
use edgebert::EdgeBertEngine;
use edgebert_model::{AlbertConfig, AlbertModel};
use edgebert_tasks::{Task, TaskGenerator, VocabLayout};
use edgebert_tensor::Rng;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Fixture {
    builder: EngineBuilder,
    engine: EdgeBertEngine,
    tokens: Vec<u32>,
}

/// A strict-threshold (`et = 0`) engine: no sentence exits early, the
/// LAI forecast is always full depth (no LUT trajectory entry is below
/// zero), so every session has `num_layers − 1` stretched steps — the
/// maximum number of preemption boundaries.
fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let layout = VocabLayout::standard();
        let cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
        let mut rng = Rng::seed_from(41);
        let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
        let gen = TaskGenerator::standard(Task::Sst2, cfg.max_seq_len);
        let data = gen.generate(12, 9);
        let cache = SweepCache::build(&model, &data);
        let pred = EntropyPredictor::train(&cache.entropy_dataset(), 40, 3);
        let lut = pred.to_lut(32, 1.1);
        let tokens = data.examples()[0].tokens.clone();
        let builder = EngineBuilder::new(Arc::new(model), Arc::new(lut))
            .uniform_thresholds(EntropyThresholds::uniform(0.0))
            .latency_target(200e-3);
        let engine = builder.clone().build();
        Fixture {
            builder,
            engine,
            tokens,
        }
    })
}

#[test]
fn park_before_the_first_decision_is_a_free_checkpoint() {
    // Parking between layer 1 and the first stretched layer commits
    // nothing (no segment is open yet); resuming with zero parked time
    // reproduces the uninterrupted run bit for bit — the decision was
    // always going to be taken at the segment start.
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone()).with_latency_target(200e-3);
    let direct = f.engine.serve(&request);

    let mut session = f.engine.begin(&request);
    assert_eq!(session.state(), SessionState::Running);
    assert_eq!(session.step(), StepOutcome::Continue);
    assert_eq!(session.layers_done(), 1);
    assert!(session.predicted_layer().unwrap() > 1);
    assert!(session.park());
    assert_eq!(session.state(), SessionState::Parked);
    assert!(!session.park(), "parking a parked session is a no-op");
    session.resume(0.0);
    while !session.is_complete() {
        session.step();
    }
    assert_eq!(session.preemptions(), 1);
    assert_eq!(session.parked_s(), 0.0);
    assert_eq!(session.response().expect("complete"), direct);
}

#[test]
fn park_mid_segment_charges_a_fresh_transition() {
    // Parking inside a stretched segment closes it; the resume segment
    // re-decides and charges a fresh nominal→decision transition, so
    // the interrupted run is strictly slower than the uninterrupted
    // one — preemption is modeled, not free. The algorithmic outputs
    // (exit layer, forecast, prediction) are unchanged.
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone()).with_latency_target(200e-3);
    let direct = f.engine.serve(&request).result;
    assert!(direct.exit_layer > 2, "fixture must have a mid-segment");

    let mut session = f.engine.begin(&request);
    session.step(); // layer 1 (nominal)
    session.step(); // layer 2: opens the stretched segment
    assert!(session.park());
    session.resume(0.0);
    while !session.is_complete() {
        session.step();
    }
    let parked = session.result().expect("complete").clone();
    assert_eq!(parked.exit_layer, direct.exit_layer);
    assert_eq!(parked.predicted_layer, direct.predicted_layer);
    assert_eq!(parked.prediction, direct.prediction);
    // The resume decision re-reserves the worst-case transition and
    // re-charges the actual one out of a smaller remaining budget, so
    // the remaining layers must run strictly faster than the
    // uninterrupted segment did — and the sentence still lands inside
    // its target.
    assert!(
        parked.freq_hz > direct.freq_hz,
        "the resumed segment re-decides faster: {} Hz vs {} Hz",
        parked.freq_hz,
        direct.freq_hz
    );
    assert!(parked.deadline_met);
    assert!(parked.latency_s <= 200e-3 * (1.0 + 1e-4));
    assert!(session.modeled_latency_s() == parked.latency_s);
}

#[test]
fn resume_after_burned_slack_raises_the_operating_point() {
    // A session parked for most of its budget must come back faster:
    // the resume decision sees the parked wall time as burned slack
    // (paper §5.2's T_elapsed), and the verdict judges the sojourn.
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone()).with_latency_target(200e-3);
    let fresh = f.engine.serve(&request).result;
    assert!(fresh.voltage < 0.8, "loose target must stretch");

    let mut session = f.engine.begin(&request);
    session.step(); // layer 1; no segment open yet
    session.park();
    session.resume(185e-3); // most of the 200 ms budget gone
    while !session.is_complete() {
        session.step();
    }
    let result = session.result().expect("complete").clone();
    assert!(
        result.voltage > fresh.voltage,
        "parked {} V vs fresh {} V",
        result.voltage,
        fresh.voltage
    );
    assert!(result.latency_s < fresh.latency_s);
    assert_eq!(session.parked_s(), 185e-3);
    assert_eq!(
        result.deadline_met,
        deadline_met(185e-3 + result.latency_s, 200e-3),
        "the verdict charges the parked time"
    );
}

#[test]
fn base_and_ee_sessions_step_to_the_monolithic_results() {
    let f = fixture();
    for mode in [InferenceMode::Base, InferenceMode::ConventionalEe] {
        let request = InferenceRequest::new(f.tokens.clone())
            .with_mode(mode)
            .with_latency_target(1.0);
        let direct = f.engine.serve(&request);
        let mut session = f.engine.begin(&request);
        let mut last = session.step();
        // Park/resume at every boundary: nominal-V/F modes have no
        // segment state, so checkpointing is free and the final
        // accounting is unchanged.
        while !session.is_complete() {
            assert_eq!(last, StepOutcome::Continue);
            session.park();
            session.resume(0.0);
            last = session.step();
        }
        assert_eq!(last, StepOutcome::Done, "et = 0 never exits early");
        assert_eq!(session.response().expect("complete"), direct, "{mode:?}");
    }
}

#[test]
#[should_panic(expected = "resume a parked session")]
fn stepping_a_parked_session_panics() {
    let f = fixture();
    let mut session = f.engine.begin(&InferenceRequest::new(f.tokens.clone()));
    session.step();
    session.park();
    session.step();
}

#[test]
fn modeled_latency_is_monotone_and_lands_on_the_result() {
    let f = fixture();
    let mut session = f
        .engine
        .begin(&InferenceRequest::new(f.tokens.clone()).with_latency_target(150e-3));
    let mut last = session.modeled_latency_s();
    assert_eq!(last, 0.0);
    while !session.is_complete() {
        session.step();
        let now = session.modeled_latency_s();
        assert!(now >= last, "accounting never runs backwards");
        last = now;
    }
    assert_eq!(last, session.result().expect("complete").latency_s);
    assert!(!session.park(), "a complete session cannot be parked");
}

#[test]
fn stretch_caps_bound_the_dvfs_window_without_touching_the_verdict() {
    let f = fixture();
    let base = InferenceRequest::new(f.tokens.clone()).with_latency_target(200e-3);
    let uncapped = f.engine.serve(&base);
    assert!(uncapped.result.voltage < 0.8);

    // A cap below the sentence's own target compresses compute: higher
    // operating point, shorter latency, more energy — but the deadline
    // verdict is still the request's own (met). The cap is sized off
    // the nominal service estimate so the window genuinely pinches.
    let floor_s = f.engine.nominal_service_estimate_s();
    assert!(floor_s * 3.0 < 200e-3, "fixture target must dwarf service");
    let capped = f
        .engine
        .serve(&base.clone().with_stretch_cap_s(1.5 * floor_s));
    assert!(
        capped.result.voltage > uncapped.result.voltage,
        "capped {} V vs uncapped {} V",
        capped.result.voltage,
        uncapped.result.voltage
    );
    assert!(capped.result.latency_s < uncapped.result.latency_s);
    assert!(capped.result.energy_j > uncapped.result.energy_j);
    assert!(capped.result.deadline_met);
    assert_eq!(capped.result.exit_layer, uncapped.result.exit_layer);

    // A zero (or negative) cap leaves no stretch budget at all: the
    // sentence runs at nominal, and the verdict still judges its own
    // target — an infeasible *cap* must not report a missed deadline.
    let floored = f.engine.serve(&base.clone().with_stretch_cap_s(0.0));
    assert_eq!(floored.result.voltage, 0.8);
    assert!(floored.result.deadline_met);
    let negative = f.engine.serve(&base.clone().with_stretch_cap_s(-1.0));
    assert_eq!(negative, floored);

    // A cap looser than the target is inert (same grid point), and a
    // non-finite cap sanitizes to uncapped, bit for bit.
    let loose = f.engine.serve(&base.clone().with_stretch_cap_s(10.0));
    assert_eq!(loose.result.voltage, uncapped.result.voltage);
    assert_eq!(loose.result.exit_layer, uncapped.result.exit_layer);
    assert!((loose.result.latency_s - uncapped.result.latency_s).abs() < 1e-9);
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let req = base.clone().with_stretch_cap_s(bad);
        assert_eq!(req.effective_stretch_cap_s(), None);
        assert_eq!(f.engine.serve(&req), uncapped, "cap {bad}");
    }
}

/// The tentpole's serving contract, end to end through real worker
/// threads with service-time emulation: a tight arrival lands just
/// after a long stretched sentence dispatches on the only shard.
/// Non-preemptive, the tight job waits out the entire stretched
/// service and misses; preemptive, the long session parks at the next
/// layer boundary, the tight job runs and meets its deadline, and the
/// resumed long job still meets its own loose deadline after a fresh
/// DVFS decision against its remaining slack.
#[test]
fn tight_arrival_preempts_a_stretched_long_job() {
    let f = fixture();
    let rt =
        MultiTaskRuntime::from_runtimes([TaskRuntime::from_builder(Task::Sst2, f.builder.clone())]);
    let floor_s = f.engine.nominal_service_estimate_s();
    // The long job stretches toward 30× the nominal service estimate
    // (well inside the V/F table's stretch range); the tight job's
    // target sits at 2/3 of the long job's *modeled* stretched
    // latency: far above one stretched layer step plus its own
    // compute (so preemption always saves it, whichever boundary it
    // lands on), far below the full stretched service (so
    // head-of-line blocking always kills it).
    let long_target_s = 30.0 * floor_s;
    let long_req = InferenceRequest::new(f.tokens.clone()).with_latency_target(long_target_s);
    let long_latency_s = f.engine.serve(&long_req).result.latency_s;
    assert!(
        long_latency_s > 10.0 * floor_s,
        "the long job must actually stretch ({long_latency_s} s vs floor {floor_s} s)"
    );
    let tight_target_s = long_latency_s * 2.0 / 3.0;
    let tight_req = InferenceRequest::new(f.tokens.clone()).with_latency_target(tight_target_s);

    let run = |preemption: PreemptionPolicy| {
        let server = Server::start(
            &rt,
            ServerConfig {
                emulate_service_time: true,
                preemption,
                ..ServerConfig::default()
            },
        );
        let long_handle = server
            .submit(Task::Sst2, long_req.clone())
            .expect("admitted");
        // Wait for the long job to dispatch (the lane empties), then
        // land the tight arrival just after — the head-of-line shape.
        while server.queued() > 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
        let tight_handle = server
            .submit(Task::Sst2, tight_req.clone())
            .expect("admitted");
        let tight = tight_handle.wait().expect("worker alive");
        let long = long_handle.wait().expect("worker alive");
        let stats = server.shutdown();
        (long, tight, stats)
    };

    // Non-preemptive baseline: the tight job waits out the whole
    // stretched service and misses by construction.
    let (long_np, tight_np, stats_np) = run(PreemptionPolicy::Off);
    assert!(long_np.deadline_met, "the long job owns the lane");
    assert_eq!(long_np.preemptions, 0);
    assert!(
        !tight_np.deadline_met,
        "head-of-line blocking must kill the tight job (sojourn {} s vs target {} s)",
        tight_np.sojourn_s, tight_target_s
    );
    assert_eq!(stats_np.preempted(), 0);

    // Preemptive: the long session parks at a layer boundary, the
    // tight job overtakes and meets, and the resumed long job still
    // meets its own loose deadline after re-deciding V/F against its
    // remaining slack. Both verdicts are judged under the one rule,
    // parked time charged.
    let (long_p, tight_p, stats_p) = run(PreemptionPolicy::DeadlineGap(0.0));
    assert!(
        long_p.preemptions >= 1,
        "the long session must have parked at a layer boundary"
    );
    assert!(long_p.parked_s > 0.0);
    assert!(
        tight_p.deadline_met,
        "preemption must save the tight job (sojourn {} s vs target {} s)",
        tight_p.sojourn_s, tight_target_s
    );
    assert!(
        long_p.deadline_met,
        "the resumed long job re-budgets into its remaining slack \
         (parked {} s, latency {} s, target {} s)",
        long_p.parked_s, long_p.response.result.latency_s, long_target_s
    );
    assert!(tight_p.sojourn_s < tight_np.sojourn_s);
    assert_eq!(
        long_p.deadline_met,
        deadline_met(
            long_p.slack_deducted_s + long_p.parked_s + long_p.response.result.latency_s,
            long_target_s
        ),
        "the long verdict charges queue slack and parked time"
    );
    assert!(stats_p.preempted() >= 1);
    assert_eq!(stats_p.resumed(), stats_p.preempted());
    assert!(stats_p.max_parked_depth() >= 1);
    assert_eq!(stats_p.served(), 2);
}
