//! Integration tests for the `edgebert::telemetry` subsystem: span
//! chains recorded under real server load, bit-identity neutrality of
//! the enabled path, deterministic virtual-timeline traces from the
//! scheduler, exporter content, and log-histogram edge cases (zero
//! samples, single sample, disjoint merges, serde exactness, and
//! proptest quantile monotonicity).

use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::{DeadlineScheduler, SchedulerConfig};
use edgebert::server::{Server, ServerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert::telemetry::{
    render_prometheus, render_trace_jsonl, span_chains, validate_span_chain, LogHistogram,
    TelemetryConfig, TraceEventKind,
};
use edgebert::InferenceRequest;
use edgebert_tasks::{Task, TaskGenerator};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

fn runtime() -> &'static MultiTaskRuntime {
    static CELL: OnceLock<MultiTaskRuntime> = OnceLock::new();
    CELL.get_or_init(|| {
        MultiTaskRuntime::from_runtimes([
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Sst2, Scale::Test, 0x7E1E)),
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Qnli, Scale::Test, 0x7E1F)),
        ])
    })
}

fn tokens_for(task: Task, n: usize, seed: u64) -> Vec<Vec<u32>> {
    let rt = runtime().runtime(task).expect("served");
    let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
    gen.generate(n, seed)
        .examples()
        .iter()
        .map(|ex| ex.tokens.clone())
        .collect()
}

fn telemetry_config() -> ServerConfig {
    ServerConfig {
        queue_aware_slack: false,
        telemetry: Some(TelemetryConfig {
            sample_period_s: 1e-4,
            ..TelemetryConfig::default()
        }),
        ..ServerConfig::default()
    }
}

/// The acceptance contract: with telemetry on, every served request
/// leaves a well-formed span chain (Admitted → Popped → … → Completed,
/// monotone timestamps), the JSONL dump has one line per event, and
/// the Prometheus render carries non-empty queue-delay and energy
/// histograms.
#[test]
fn server_load_produces_wellformed_span_chains_and_exports() {
    let rt = runtime();
    let server = Server::start(rt, telemetry_config());
    // Sequential submit/wait: no two threads ever race a ring push, so
    // the ring is provably lossless and every chain must be complete.
    let mut ids = Vec::new();
    for (i, tokens) in tokens_for(Task::Sst2, 4, 61)
        .into_iter()
        .chain(tokens_for(Task::Qnli, 4, 62))
        .enumerate()
    {
        let task = if i < 4 { Task::Sst2 } else { Task::Qnli };
        let req = InferenceRequest::new(tokens).with_latency_target(50e-3);
        let handle = server.submit(task, req).expect("admitted");
        ids.push((task, handle.submission()));
        handle.wait().expect("served");
    }
    // Let the lane sampler take some ticks before shutdown.
    std::thread::sleep(Duration::from_millis(10));
    let (stats, snapshot) = server.shutdown_with_telemetry();
    let snapshot = snapshot.expect("telemetry was enabled");

    assert_eq!(
        snapshot.dropped_events, 0,
        "sequential load cannot contend the ring"
    );
    let chains = span_chains(&snapshot.events);
    for &(task, id) in &ids {
        let (_, chain) = chains
            .iter()
            .find(|((t, r), _)| *t == task && *r == id)
            .unwrap_or_else(|| panic!("no span chain for {task} #{id}"));
        validate_span_chain(chain)
            .unwrap_or_else(|e| panic!("malformed chain for {task} #{id}: {e}"));
        assert!(
            chain
                .iter()
                .any(|ev| matches!(ev.kind, TraceEventKind::SegmentStart { .. })),
            "served request should record at least one compute segment"
        );
    }

    // JSONL: one line per event, each a JSON object.
    let jsonl = render_trace_jsonl(&snapshot.events);
    assert_eq!(jsonl.lines().count(), snapshot.events.len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));

    // Prometheus: queue-delay and energy histogram families present
    // and non-empty, lane gauges present.
    let prom = render_prometheus(&snapshot);
    assert!(prom.contains("edgebert_queue_delay_seconds_bucket"));
    assert!(prom.contains("edgebert_energy_joules_bucket"));
    for lane in &snapshot.lanes {
        assert!(lane.histograms.queue_delay_s.count() > 0);
        assert!(lane.histograms.energy_per_request_j.count() > 0);
        assert!(lane.histograms.sojourn_s.count() > 0);
    }
    assert!(
        !snapshot.samples.is_empty(),
        "sampler should have ticked during the run"
    );

    // The stats snapshot carries the same distributions.
    for lane in &stats.lanes {
        let h = lane
            .histograms
            .expect("telemetry-on stats carry histograms");
        assert_eq!(h.sojourn_s.count(), lane.served);
    }
}

/// Telemetry is observation-only: the exact same submissions through a
/// telemetry-on server produce bit-identical engine responses to a
/// telemetry-off server.
#[test]
fn telemetry_is_bit_identity_neutral() {
    let rt = runtime();
    let off = ServerConfig {
        queue_aware_slack: false,
        ..ServerConfig::default()
    };
    let on = ServerConfig {
        telemetry: Some(TelemetryConfig::default()),
        ..off
    };
    let submissions: Vec<(Task, InferenceRequest)> = tokens_for(Task::Sst2, 3, 71)
        .into_iter()
        .map(|t| {
            (
                Task::Sst2,
                InferenceRequest::new(t).with_latency_target(40e-3),
            )
        })
        .chain(tokens_for(Task::Qnli, 3, 72).into_iter().map(|t| {
            (
                Task::Qnli,
                InferenceRequest::new(t).with_latency_target(80e-3),
            )
        }))
        .collect();
    let serve_all = |cfg: ServerConfig| {
        let server = Server::start(rt, cfg);
        let responses: Vec<_> = submissions
            .iter()
            .map(|(task, req)| {
                server
                    .submit(*task, req.clone())
                    .expect("admitted")
                    .wait()
                    .expect("served")
                    .response
            })
            .collect();
        server.shutdown();
        responses
    };
    assert_eq!(serve_all(off), serve_all(on));
}

/// The scheduler's virtual-timestamp traces are fully deterministic:
/// two identically-built schedulers fed the same submissions emit
/// identical event lists, every chain validates, and responses stay
/// bit-identical to a telemetry-off drain.
#[test]
fn scheduler_traces_are_deterministic_and_wellformed() {
    let rt = runtime();
    let cfg_on = SchedulerConfig {
        telemetry: Some(TelemetryConfig::default()),
        ..SchedulerConfig::default()
    };
    let load: Vec<(Task, InferenceRequest, f64)> = tokens_for(Task::Sst2, 3, 81)
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            (
                Task::Sst2,
                InferenceRequest::new(t).with_latency_target(30e-3),
                2e-3 * i as f64,
            )
        })
        .chain(
            tokens_for(Task::Qnli, 3, 82)
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    (
                        Task::Qnli,
                        InferenceRequest::new(t).with_latency_target(90e-3),
                        1e-3 + 3e-3 * i as f64,
                    )
                }),
        )
        .collect();
    let drain_with = |cfg: SchedulerConfig| {
        let mut sched = DeadlineScheduler::new(rt, cfg);
        for (task, req, arrival) in &load {
            sched.submit(*task, req.clone(), *arrival);
        }
        let out = sched.drain();
        (out, sched.telemetry_snapshot())
    };

    let (out_a, snap_a) = drain_with(cfg_on);
    let (out_b, snap_b) = drain_with(cfg_on);
    let (out_off, snap_off) = drain_with(SchedulerConfig::default());
    assert!(snap_off.is_none(), "telemetry off records nothing");

    let snap_a = snap_a.expect("telemetry on");
    let snap_b = snap_b.expect("telemetry on");
    assert_eq!(
        snap_a.events, snap_b.events,
        "virtual traces must be reproducible"
    );
    assert_eq!(snap_a.dropped_events, 0);

    // Observation only: responses identical across telemetry on/off.
    for ((a, b), off) in out_a.iter().zip(&out_b).zip(&out_off) {
        assert_eq!(a, b);
        assert_eq!(
            a.as_ref().map(|r| &r.response),
            off.as_ref().map(|r| &r.response)
        );
    }

    // One well-formed chain per submission, with virtual timestamps.
    let chains = span_chains(&snap_a.events);
    assert_eq!(chains.len(), load.len());
    for ((task, id), chain) in &chains {
        validate_span_chain(chain)
            .unwrap_or_else(|e| panic!("malformed chain for {task} #{id}: {e}"));
        assert!(matches!(chain[0].kind, TraceEventKind::Admitted));
        assert!(matches!(chain[1].kind, TraceEventKind::Popped { .. }));
        assert!(matches!(
            chain.last().expect("non-empty").kind,
            TraceEventKind::Completed { .. }
        ));
    }

    // Per-engine histograms folded one entry per served sentence.
    for lane in &snap_a.lanes {
        assert_eq!(lane.histograms.queue_delay_s.count(), 3);
        assert_eq!(lane.histograms.sojourn_s.count(), 3);
        assert_eq!(lane.histograms.energy_per_request_j.count(), 3);
    }
}

/// A second drain on the same scheduler must not collide trace ids
/// with the first — chains stay one-per-request across drains.
#[test]
fn scheduler_trace_ids_are_unique_across_drains() {
    let rt = runtime();
    let mut sched = DeadlineScheduler::new(
        rt,
        SchedulerConfig {
            telemetry: Some(TelemetryConfig::default()),
            ..SchedulerConfig::default()
        },
    );
    let toks = tokens_for(Task::Sst2, 2, 91);
    for round in 0..2 {
        for t in &toks {
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(t.clone()).with_latency_target(50e-3),
                round as f64,
            );
        }
        sched.drain();
    }
    let snap = sched.telemetry_snapshot().expect("telemetry on");
    let chains = span_chains(&snap.events);
    assert_eq!(
        chains.len(),
        4,
        "2 drains × 2 submissions → 4 distinct chains"
    );
    for (_, chain) in &chains {
        validate_span_chain(chain).expect("well-formed chain");
    }
}

#[test]
fn empty_histogram_reports_zeros() {
    let h = LogHistogram::new();
    assert!(h.is_empty());
    assert_eq!(h.count(), 0);
    assert_eq!(h.p50(), 0.0);
    assert_eq!(h.p99(), 0.0);
    assert_eq!(h.max_edge(), 0.0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.cumulative_nonzero().count(), 0);
}

#[test]
fn single_sample_histogram_brackets_it() {
    let mut h = LogHistogram::new();
    h.record(3.2e-3);
    assert_eq!(h.count(), 1);
    // Every quantile is the same bucket's upper edge, which bounds the
    // sample from above within one bucket width (10^(1/16) ≈ 1.155).
    let edge = h.p50();
    assert_eq!(edge, h.p95());
    assert_eq!(edge, h.p99());
    assert_eq!(edge, h.max_edge());
    assert!((3.2e-3..=3.2e-3 * 1.156).contains(&edge));
}

#[test]
fn disjoint_ranges_merge_exactly() {
    let mut low = LogHistogram::new();
    let mut high = LogHistogram::new();
    for i in 0..50 {
        low.record(1e-6 * (1.0 + i as f64 / 50.0)); // [1µs, 2µs)
        high.record(1.0 + i as f64 / 50.0); // [1s, 2s)
    }
    let mut merged = low;
    merged.merge(&high);
    assert_eq!(merged.count(), 100);
    // Median sits in the low range, p99 in the high range.
    assert!(
        merged.p50() < 1e-5,
        "p50 {} should be in the µs range",
        merged.p50()
    );
    assert!(
        merged.p99() > 0.5,
        "p99 {} should be in the seconds range",
        merged.p99()
    );
    assert_eq!(merged.sum(), low.sum() + high.sum());
}

#[test]
fn histogram_serde_round_trip_is_exact() {
    let mut h = LogHistogram::new();
    for &v in &[0.0, 1e-9, 4.2e-5, 0.37, 999.0, 1e7, -3.0] {
        h.record(v);
    }
    let json = serde::json::to_string(&h);
    let back: LogHistogram = serde::json::from_str(&json).expect("round trip");
    // Bit-exact: counts are integers and the sum travels as the same
    // f64 (the shim renders f64 with full round-trip precision).
    assert_eq!(h, back);
    assert_eq!(h.p99(), back.p99());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles are monotone in `q` and bound every recorded sample.
    #[test]
    fn quantiles_are_monotone_and_bound_samples(
        values in prop::collection::vec(1e-8f64..5e2, 1..200),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new();
        let mut max_v = 0.0f64;
        for &v in &values {
            h.record(v);
            max_v = max_v.max(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi),
            "quantile({lo}) > quantile({hi})");
        prop_assert!(h.max_edge() >= max_v * 0.999,
            "max edge {} below largest sample {max_v}", h.max_edge());
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Merging preserves counts and keeps quantiles within the merged
    /// supports' bounds.
    #[test]
    fn merge_preserves_counts(
        a in prop::collection::vec(1e-8f64..5e2, 0..100),
        b in prop::collection::vec(1e-8f64..5e2, 0..100),
    ) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let mut merged = ha;
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert!(merged.max_edge() >= ha.max_edge().max(hb.max_edge()) * 0.999);
    }
}
