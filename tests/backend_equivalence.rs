//! Backend-extraction regression suite.
//!
//! The `InferenceBackend` refactor moved the engine's inline hardware
//! calls (simulator, DVFS controller, LDO/ADPLL transitions, ReRAM
//! embedding reads) behind `AcceleratorBackend`. These tests pin the
//! contract that the move changed *nothing numerically*: a reference
//! implementation reproduces the pre-refactor engine's cost arithmetic
//! by driving the hardware crates directly, and the engine must match
//! it bit for bit — across all four GLUE tasks, all three modes,
//! explicit targets, drop tiers, and queueing stamps (unit tests +
//! proptest).
//!
//! The `MobileGpuBackend` sanity tests pin the comparative claims: the
//! baseline costs the engine's wired workload, preserves the paper's
//! orders-of-magnitude energy gap, and degrades the engine to
//! nominal-only scheduling (no DVFS) without breaking the serving
//! layers.

use edgebert::backend::{BackendSpec, MobileGpuBackend};
use edgebert::calibrate::SweepCache;
use edgebert::engine::{
    deadline_met, task_hardware_workload, DropTarget, EdgeBertEngine, EngineBuilder,
    EntropyThresholds, InferenceMode, InferenceRequest, SentenceResult,
};
use edgebert::predictor::{EntropyPredictor, PredictorLut};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert::session::StepOutcome;
use edgebert_envm::{CellTech, ReramArray};
use edgebert_hw::memory::sentence_embedding_bits;
use edgebert_hw::{
    AcceleratorConfig, AcceleratorSim, Adpll, DvfsController, EncoderWorkload, Ldo, MobileGpu,
    WorkloadParams,
};
use edgebert_model::{AlbertConfig, AlbertModel};
use edgebert_tasks::{Dataset, Task, TaskGenerator, VocabLayout};
use edgebert_tensor::stats::argmax;
use edgebert_tensor::Rng;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

struct Fixture {
    model: Arc<AlbertModel>,
    lut: Arc<PredictorLut>,
    data: Dataset,
    workload: WorkloadParams,
}

fn build_fixture(task: Task, seed: u64) -> Fixture {
    let layout = VocabLayout::standard();
    let cfg = AlbertConfig::tiny(layout.vocab_size(), task.num_classes());
    let mut rng = Rng::seed_from(seed);
    let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
    let gen = TaskGenerator::standard(task, cfg.max_seq_len);
    let data = gen.generate(16, seed + 1);
    let cache = SweepCache::build(&model, &data);
    let pred = EntropyPredictor::train(&cache.entropy_dataset(), 40, 3);
    let lut = pred.to_lut(32, 1.1);
    Fixture {
        model: Arc::new(model),
        lut: Arc::new(lut),
        data,
        workload: task_hardware_workload(task, true),
    }
}

fn engine(f: &Fixture, target_s: f64, et: f32) -> EdgeBertEngine {
    EngineBuilder::new(Arc::clone(&f.model), Arc::clone(&f.lut))
        .workload(f.workload.clone())
        .uniform_thresholds(EntropyThresholds::uniform(et))
        .latency_target(target_s)
        .build()
}

/// The pre-refactor engine's hardware cost path, reproduced by driving
/// the hardware crates directly — the numerical oracle the
/// `AcceleratorBackend` plumbing is pinned against.
struct Reference {
    sim: AcceleratorSim,
    dvfs: DvfsController,
    layer: EncoderWorkload,
    layer_cycles: u64,
    rram: ReramArray,
    embed_bits: usize,
}

impl Reference {
    fn new(workload: &WorkloadParams) -> Self {
        let cfg = AcceleratorConfig::energy_optimal();
        let sim = AcceleratorSim::new(cfg);
        let layer = sim.layer_workload(workload);
        let layer_cycles = layer.cycles();
        Self {
            dvfs: DvfsController::new(cfg),
            sim,
            layer,
            layer_cycles,
            rram: ReramArray::new(CellTech::Mlc2, 2.0),
            embed_bits: sentence_embedding_bits(workload.seq_len, 128, 0.4),
        }
    }

    fn embedding_read_cost(&self) -> (f64, f64) {
        (
            self.rram.read_latency_ns(self.embed_bits) * 1e-9,
            self.rram.read_energy_pj(self.embed_bits) * 1e-12,
        )
    }

    fn base(&self, model: &AlbertModel, tokens: &[u32]) -> SentenceResult {
        let out = model.forward_layers(tokens);
        let layers = model.num_layers();
        let cost = self.sim.run_layers_nominal(&self.layer, layers);
        let (el, ee) = self.embedding_read_cost();
        SentenceResult {
            mode: InferenceMode::Base,
            exit_layer: layers,
            predicted_layer: None,
            prediction: argmax(&out.logits[layers - 1]),
            latency_s: cost.seconds + el,
            energy_j: cost.energy_j + ee,
            voltage: self.sim.config().vdd_nominal,
            freq_hz: self.sim.config().freq_max_hz,
            deadline_met: true,
        }
    }

    fn conventional_ee(&self, model: &AlbertModel, tokens: &[u32], et: f32) -> SentenceResult {
        let (exit, logits, _) = model.infer_early_exit(tokens, et);
        let cost = self.sim.run_layers_nominal(&self.layer, exit);
        let (el, ee) = self.embedding_read_cost();
        SentenceResult {
            mode: InferenceMode::ConventionalEe,
            exit_layer: exit,
            predicted_layer: None,
            prediction: argmax(&logits),
            latency_s: cost.seconds + el,
            energy_j: cost.energy_j + ee,
            voltage: self.sim.config().vdd_nominal,
            freq_hz: self.sim.config().freq_max_hz,
            deadline_met: true,
        }
    }

    fn latency_aware(
        &self,
        model: &AlbertModel,
        lut: &PredictorLut,
        tokens: &[u32],
        et: f32,
        latency_target_s: f64,
        elapsed_queue_s: f64,
    ) -> SentenceResult {
        let out = model.forward_layers(tokens);
        let num_layers = model.num_layers();
        let cfg = self.sim.config();

        let ldo = Ldo::new(cfg.vdd_standby);
        let pll = Adpll::new(cfg.freq_max_hz);
        let wake_s = ldo.transition_time_ns(cfg.vdd_standby, cfg.vdd_nominal) * 1e-9
            + pll.relock_ns() * 1e-9;
        let (embed_lat, embed_energy) = self.embedding_read_cost();
        let layer1 = self.sim.run_layers_nominal(&self.layer, 1);

        let mut latency = wake_s + embed_lat + layer1.seconds;
        let mut energy = embed_energy + layer1.energy_j;

        let h1 = out.entropies[0];
        if h1 < et {
            return SentenceResult {
                mode: InferenceMode::LatencyAware,
                exit_layer: 1,
                predicted_layer: Some(1),
                prediction: argmax(&out.logits[0]),
                latency_s: latency,
                energy_j: energy,
                voltage: cfg.vdd_nominal,
                freq_hz: cfg.freq_max_hz,
                deadline_met: deadline_met(elapsed_queue_s + latency, latency_target_s),
            };
        }

        let predicted = lut.predict_exit_layer(h1, et).clamp(2, num_layers);
        let remaining_cycles = self.layer_cycles * (predicted as u64 - 1);
        let remaining_budget = latency_target_s - latency - self.dvfs.floor_transition_s();
        let decision =
            self.dvfs
                .decide_with_elapsed(remaining_cycles, remaining_budget, elapsed_queue_s);
        let transition_s = ldo.transition_time_ns(cfg.vdd_nominal, decision.voltage) * 1e-9
            + if decision.freq_hz == cfg.freq_max_hz {
                0.0
            } else {
                pll.relock_ns() * 1e-9
            };

        let mut exit = predicted;
        for l in 2..=predicted {
            if out.entropies[l - 1] < et {
                exit = l;
                break;
            }
        }
        let segment =
            self.sim
                .run_layers(&self.layer, exit - 1, decision.voltage, decision.freq_hz);
        latency += transition_s + segment.seconds;
        energy += segment.energy_j;

        SentenceResult {
            mode: InferenceMode::LatencyAware,
            exit_layer: exit,
            predicted_layer: Some(predicted),
            prediction: argmax(&out.logits[exit - 1]),
            latency_s: latency,
            energy_j: energy,
            voltage: decision.voltage,
            freq_hz: decision.freq_hz,
            deadline_met: decision.feasible
                && deadline_met(elapsed_queue_s + latency, latency_target_s),
        }
    }
}

#[test]
fn accelerator_backend_is_bit_identical_across_all_glue_tasks() {
    for (i, task) in Task::all().into_iter().enumerate() {
        let f = build_fixture(task, 0xBE11 + i as u64);
        let reference = Reference::new(&f.workload);
        // et = 0.25 exercises both the layer-1 exit and the DVFS path
        // across the dataset; et = 0.0 forces the DVFS path everywhere.
        for et in [0.25f32, 0.0] {
            for target_s in [2e-3, 50e-3, 400e-3] {
                let eng = engine(&f, target_s, et);
                for ex in f.data.iter().take(4) {
                    assert_eq!(
                        eng.run_base(&ex.tokens),
                        reference.base(&f.model, &ex.tokens),
                        "{task} base"
                    );
                    assert_eq!(
                        eng.run_conventional_ee(&ex.tokens),
                        reference.conventional_ee(&f.model, &ex.tokens, et),
                        "{task} ee et={et}"
                    );
                    for elapsed in [0.0, target_s * 0.5, target_s * 2.0] {
                        assert_eq!(
                            eng.run_latency_aware_queued(
                                &ex.tokens,
                                target_s,
                                DropTarget::OnePercent,
                                elapsed
                            ),
                            reference
                                .latency_aware(&f.model, &f.lut, &ex.tokens, et, target_s, elapsed),
                            "{task} lai et={et} target={target_s} elapsed={elapsed}"
                        );
                    }
                }
            }
        }
    }
}

fn sst2_fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| build_fixture(Task::Sst2, 0xBEEF))
}

fn task_fixtures() -> &'static [Fixture; 4] {
    static CELL: OnceLock<[Fixture; 4]> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut tasks = Task::all().into_iter();
        [(); 4].map(|_| {
            let task = tasks.next().expect("four GLUE tasks");
            build_fixture(task, 0x5E55 + task as u64)
        })
    })
}

/// Drives a session by hand, checking the step-outcome protocol on the
/// way: every non-terminal step is `Continue`, the terminal step is
/// `Exited`/`Done`, completed sessions are idempotent, and the result
/// is returned.
fn step_to_completion(engine: &EdgeBertEngine, request: &InferenceRequest) -> SentenceResult {
    let mut session = engine.begin(request);
    let mut steps = 0usize;
    loop {
        let outcome = session.step();
        steps += 1;
        assert!(steps <= 16, "sessions terminate within the model depth");
        match outcome {
            StepOutcome::Continue => assert!(!session.is_complete()),
            StepOutcome::Exited | StepOutcome::Done => {
                assert!(session.is_complete());
                assert_eq!(session.layers_done(), session.result().unwrap().exit_layer);
                // Stepping a completed session is an idempotent no-op.
                assert_eq!(session.step(), outcome);
                return session.result().cloned().expect("complete");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any (sentence, threshold, target, queue stamp) the wire can
    /// produce: the backend-routed engine equals the direct-hardware
    /// reference bit for bit.
    #[test]
    fn backend_equivalence_holds_for_arbitrary_requests(
        sentence in 0usize..16,
        et_idx in 0usize..4,
        target_ms in 1.0f64..400.0,
        elapsed_frac in 0.0f64..2.0,
    ) {
        let f = sst2_fixture();
        let reference = Reference::new(&f.workload);
        let et = [0.0f32, 0.1, 0.3, 1.0][et_idx];
        let target_s = target_ms * 1e-3;
        let elapsed = target_s * elapsed_frac;
        let eng = engine(f, target_s, et);
        let tokens = &f.data.examples()[sentence].tokens;
        prop_assert_eq!(
            eng.run_latency_aware_queued(tokens, target_s, DropTarget::OnePercent, elapsed),
            reference.latency_aware(&f.model, &f.lut, tokens, et, target_s, elapsed)
        );
        prop_assert_eq!(eng.run_base(tokens), reference.base(&f.model, tokens));
        prop_assert_eq!(
            eng.run_conventional_ee(tokens),
            reference.conventional_ee(&f.model, tokens, et)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The session redesign's acceptance proptest: a layer-stepped
    /// session driven to completion (without parking) is bit-identical
    /// to the pre-redesign monolithic paths — the direct-hardware
    /// reference oracle — across all 4 GLUE tasks × all 3 modes ×
    /// thresholds × targets × queue stamps. `serve` (the
    /// drive-to-completion wrapper) must agree with manual stepping.
    #[test]
    fn stepped_sessions_are_bit_identical_to_the_monolithic_paths(
        task_idx in 0usize..4,
        sentence in 0usize..16,
        mode_idx in 0usize..3,
        et_idx in 0usize..4,
        target_ms in 1.0f64..400.0,
        elapsed_frac in 0.0f64..2.0,
    ) {
        let f = &task_fixtures()[task_idx];
        let reference = Reference::new(&f.workload);
        let mode = InferenceMode::all()[mode_idx];
        let et = [0.0f32, 0.1, 0.3, 1.0][et_idx];
        let target_s = target_ms * 1e-3;
        let elapsed = target_s * elapsed_frac;
        let eng = engine(f, target_s, et);
        let tokens = &f.data.examples()[sentence].tokens;

        let request = InferenceRequest::new(tokens.clone())
            .with_mode(mode)
            .with_latency_target(target_s)
            .with_elapsed_queue_s(elapsed);
        let stepped = step_to_completion(&eng, &request);
        let oracle = match mode {
            InferenceMode::Base => reference.base(&f.model, tokens),
            InferenceMode::ConventionalEe => {
                reference.conventional_ee(&f.model, tokens, et)
            }
            InferenceMode::LatencyAware => reference.latency_aware(
                &f.model, &f.lut, tokens, et, target_s, elapsed,
            ),
        };
        prop_assert_eq!(&stepped, &oracle);
        // The wrapper and the manual drive agree: serve() re-judges
        // Base/EE against the target, and is otherwise the same bits.
        let served = eng.serve(&request);
        let mut expect = oracle;
        if mode != InferenceMode::LatencyAware {
            expect.deadline_met = deadline_met(elapsed + expect.latency_s, target_s);
        }
        prop_assert_eq!(served.result, expect);
    }
}

fn gpu_engine(f: &Fixture, target_s: f64, et: f32) -> EdgeBertEngine {
    EngineBuilder::new(Arc::clone(&f.model), Arc::clone(&f.lut))
        .workload(f.workload.clone())
        .uniform_thresholds(EntropyThresholds::uniform(et))
        .latency_target(target_s)
        .backend(BackendSpec::MobileGpu(MobileGpu::default()))
        .build()
}

#[test]
fn mgpu_backend_preserves_the_energy_gap() {
    // The paper's comparative headline, now judged with both platforms
    // costing the same wired workload: the accelerator is orders of
    // magnitude more energy-efficient than the TX2 baseline.
    let f = sst2_fixture();
    let accel = engine(f, 50e-3, 0.3);
    let gpu = gpu_engine(f, 50e-3, 0.3);
    assert!(!gpu.backend().can_scale());
    assert_eq!(gpu.backend().name(), "mobile-gpu");
    for mode in InferenceMode::all() {
        let a = accel.evaluate(&f.data, mode);
        let g = gpu.evaluate(&f.data, mode);
        assert!(
            g.avg_energy_j / a.avg_energy_j > 10.0,
            "{mode:?}: gpu {} J vs accel {} J",
            g.avg_energy_j,
            a.avg_energy_j
        );
        // Same software decisions on both platforms: exits and accuracy
        // are hardware-independent.
        assert_eq!(a.accuracy, g.accuracy, "{mode:?}");
        assert_eq!(a.avg_exit_layer, g.avg_exit_layer, "{mode:?}");
    }
    // And the engine's own baseline rows agree with an mGPU-backed
    // engine costing the same workload.
    let (lat, energy) = accel.mgpu_cost(f.model.num_layers());
    let gpu_base = gpu.evaluate(&f.data, InferenceMode::Base);
    assert!((gpu_base.avg_latency_s - lat).abs() / lat < 1e-12);
    assert!((gpu_base.avg_energy_j - energy).abs() / energy < 1e-12);
}

#[test]
fn mgpu_backend_degrades_to_nominal_only_scheduling() {
    let f = sst2_fixture();
    // et = 0: the DVFS path always engages.
    let gpu = gpu_engine(f, 10.0, 0.0);
    let tokens = &f.data.examples()[0].tokens;
    // A fixed-V/F backend cannot stretch into a loose deadline: the
    // operating point stays nominal and remains feasible.
    let loose = gpu.run_latency_aware_at(tokens, 10.0, DropTarget::OnePercent);
    let nominal = gpu.backend().nominal();
    assert_eq!(loose.voltage, nominal.voltage);
    assert_eq!(loose.freq_hz, nominal.freq_hz);
    assert!(loose.deadline_met);
    // An impossible deadline is flagged, still at the fixed point.
    let hopeless = gpu.run_latency_aware_at(tokens, 1e-6, DropTarget::OnePercent);
    assert_eq!(hopeless.voltage, nominal.voltage);
    assert!(!hopeless.deadline_met);
    // Queueing delay burns the budget on the fixed clock too.
    let fresh = gpu.run_latency_aware_queued(tokens, 1.0, DropTarget::OnePercent, 0.0);
    let queued = gpu.run_latency_aware_queued(tokens, 1.0, DropTarget::OnePercent, 2.0);
    assert_eq!(fresh.latency_s, queued.latency_s, "compute cost is fixed");
    assert!(fresh.deadline_met);
    assert!(!queued.deadline_met, "sojourn verdict counts the wait");
}

#[test]
fn serving_layers_are_backend_generic() {
    // A TaskRuntime minted on the mGPU backend serves requests through
    // the same front-door APIs — nothing above the engine knows which
    // platform is underneath.
    let f = sst2_fixture();
    let builder = EngineBuilder::new(Arc::clone(&f.model), Arc::clone(&f.lut))
        .workload(f.workload.clone())
        .uniform_thresholds(EntropyThresholds::uniform(0.3))
        .latency_target(200e-3)
        .backend(BackendSpec::MobileGpu(MobileGpu::default()));
    let rt = TaskRuntime::from_builder(Task::Sst2, builder);
    let tokens = f.data.examples()[0].tokens.clone();
    let direct = rt.serve(&InferenceRequest::new(tokens.clone()));
    assert!(direct.result.energy_j > 0.0);

    let mt = MultiTaskRuntime::from_runtimes([rt]);
    let batch = [
        (Task::Sst2, InferenceRequest::new(tokens.clone())),
        (Task::Sst2, InferenceRequest::new(tokens)),
    ];
    let out = mt.try_serve_batch(&batch);
    assert_eq!(out.len(), 2);
    for r in &out {
        let resp = r.as_ref().expect("sst2 is served");
        // The scheduler's batched pass reproduces direct serving on the
        // GPU backend bit for bit, exactly as on the accelerator.
        assert_eq!(resp, &direct);
    }
}

#[test]
fn mgpu_baseline_reuses_the_engines_wired_anchor() {
    // Regression: `mgpu_baseline()` used to re-derive the TX2 default
    // even when the engine itself ran on a custom mGPU anchor — the
    // baseline/engine divergence this PR exists to eliminate.
    let f = sst2_fixture();
    let custom = MobileGpu {
        full_inference_s: 0.2,
        ..MobileGpu::default()
    };
    let eng = EngineBuilder::new(Arc::clone(&f.model), Arc::clone(&f.lut))
        .workload(f.workload.clone())
        .uniform_thresholds(EntropyThresholds::uniform(0.3))
        .backend(BackendSpec::MobileGpu(custom))
        .build();
    assert_eq!(eng.mgpu_baseline().gpu(), &custom);
    // The comparison row agrees with what the engine itself reports.
    let (lat, energy) = eng.mgpu_cost(f.model.num_layers());
    let base = eng.evaluate(&f.data, InferenceMode::Base);
    assert!((base.avg_latency_s - lat).abs() / lat < 1e-12);
    assert!((base.avg_energy_j - energy).abs() / energy < 1e-12);
    // Accelerator engines still derive the TX2-anchored default.
    let accel = engine(f, 50e-3, 0.3);
    assert_eq!(accel.mgpu_baseline().gpu(), &MobileGpu::default());
}

#[test]
fn derived_flop_scale_transfers_aas_but_not_sparsity() {
    let f = sst2_fixture();
    // The optimized SST-2 workload carries AAS spans: the derived scale
    // must price the GPU below the dense baseline, inside the paper's
    // reduction range.
    let optimized = MobileGpuBackend::from_workload(MobileGpu::default(), &f.workload);
    assert!(
        (0.5..1.0).contains(&optimized.flop_scale()),
        "scale {}",
        optimized.flop_scale()
    );
    // Sparsity alone (no AAS) must not transfer: dense GPU kernels
    // cannot exploit bitmask sparsity.
    let mut sparse_only = task_hardware_workload(Task::Sst2, false);
    sparse_only.sparse_enabled = true;
    sparse_only.weight_density = 0.4;
    let sparse = MobileGpuBackend::from_workload(MobileGpu::default(), &sparse_only);
    assert_eq!(sparse.flop_scale(), 1.0);
}
