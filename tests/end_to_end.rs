//! End-to-end integration: the full EdgeBERT pipeline from synthetic
//! corpus to latency-aware inference, asserting the paper's qualitative
//! claims (shape, not absolute numbers).

use edgebert::engine::{DropTarget, InferenceMode};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_tasks::Task;
use std::sync::OnceLock;

fn artifacts() -> &'static TaskArtifacts {
    static CELL: OnceLock<TaskArtifacts> = OnceLock::new();
    CELL.get_or_init(|| TaskArtifacts::build(Task::Sst2, Scale::Test, 0xE2E))
}

#[test]
fn training_produces_a_working_optimized_student() {
    let art = artifacts();
    assert!(
        art.summary.student_accuracy > 0.55,
        "{}",
        art.summary.student_accuracy
    );
    assert!((art.summary.encoder_sparsity - 0.5).abs() < 0.06);
    assert!((art.summary.embedding_sparsity - 0.6).abs() < 0.06);
    // Spans have moved off their fully-open initialisation.
    let max_span = art.model.config.max_seq_len as f32;
    assert!(
        art.summary.avg_span < max_span,
        "avg span {}",
        art.summary.avg_span
    );
}

#[test]
fn headline_energy_ordering_holds() {
    // Paper Fig. 9: per-sentence energy Base >= EE >= LAI (loose target
    // so DVFS has headroom), with multi-x gaps between Base and LAI.
    let art = artifacts();
    let engine = art.engine_at(100e-3, DropTarget::OnePercent, true);
    let base = engine.evaluate(&art.dev, InferenceMode::Base);
    let ee = engine.evaluate(&art.dev, InferenceMode::ConventionalEe);
    let lai = engine.evaluate(&art.dev, InferenceMode::LatencyAware);
    assert!(ee.avg_energy_j <= base.avg_energy_j * 1.001);
    assert!(lai.avg_energy_j <= ee.avg_energy_j * 1.001);
    let savings = base.avg_energy_j / lai.avg_energy_j;
    assert!(savings > 1.5, "Base/LAI savings only {savings:.2}x");
    // Latency target respected.
    assert_eq!(lai.deadline_miss_rate, 0.0);
}

#[test]
fn latency_aware_accuracy_stays_within_calibrated_drop() {
    let art = artifacts();
    let engine = art.engine_at(100e-3, DropTarget::FivePercent, false);
    let full = engine.evaluate(&art.dev, InferenceMode::Base);
    let lai = engine.evaluate(&art.dev, InferenceMode::LatencyAware);
    assert!(
        lai.accuracy + 0.05 + 0.02 >= full.accuracy,
        "LAI {} vs full {}",
        lai.accuracy,
        full.accuracy
    );
}

#[test]
fn dvfs_tightens_with_the_latency_target() {
    // A looser target must never require a higher voltage.
    let art = artifacts();
    let tight = art
        .engine_at(20e-3, DropTarget::OnePercent, true)
        .evaluate(&art.dev, InferenceMode::LatencyAware);
    let loose = art
        .engine_at(200e-3, DropTarget::OnePercent, true)
        .evaluate(&art.dev, InferenceMode::LatencyAware);
    assert!(loose.avg_voltage <= tight.avg_voltage + 1e-5);
    assert!(loose.avg_energy_j <= tight.avg_energy_j * 1.001);
}

#[test]
fn predictor_lut_forecasts_are_usable() {
    let art = artifacts();
    // Forecasts lie in the valid layer range for the whole entropy range.
    let layers = art.model.num_layers();
    for i in 0..=20 {
        let h = i as f32 * 0.05;
        let p = art
            .lut
            .predict_exit_layer(h, art.calib_lai[0].entropy_threshold);
        assert!((1..=layers).contains(&p), "forecast {p} at entropy {h}");
    }
    // Predicted exits are conservative relative to actual on average
    // (Algorithm 2 stops early when the true entropy crosses first).
    for c in &art.calib_lai {
        assert!(c.avg_predicted_layer + 1e-4 >= c.avg_exit_layer);
    }
}

#[test]
fn quantized_model_matches_fp32_predictions_mostly() {
    // FP8 weights+activations should agree with FP32 on the large
    // majority of dev sentences (paper: "no accuracy degradation").
    let art = artifacts();
    let mut fp32 = edgebert_model::AlbertModel::clone(&art.model);
    fp32.activation_fp8 = None;
    // Note: weights are already quantized in `art.model`; compare the
    // activation-quantized and activation-fp32 paths.
    let mut agree = 0usize;
    for ex in &art.dev {
        let a = art.model.forward_layers(&ex.tokens);
        let b = fp32.forward_layers(&ex.tokens);
        let layers = art.model.num_layers();
        if a.prediction_at(layers) == b.prediction_at(layers) {
            agree += 1;
        }
    }
    let rate = agree as f32 / art.dev.len() as f32;
    assert!(rate >= 0.9, "agreement {rate}");
}

#[test]
fn mgpu_gap_is_orders_of_magnitude() {
    let art = artifacts();
    let engine = art.engine_at(100e-3, DropTarget::OnePercent, true);
    let lai = engine.evaluate(&art.dev, InferenceMode::LatencyAware);
    // Comparison rows are costed through the backend trait on the
    // engine's wired workload — the optimized workload transfers its
    // AAS FLOP reduction to the GPU, so the gap is judged fairly.
    let (gpu_lat, gpu_energy) = engine.mgpu_cost(12);
    assert!(gpu_energy / lai.avg_energy_j > 20.0);
    // Full 12-layer inference stays in the anchor's regime even after
    // the workload's AAS reduction transfers (the derived scale is
    // clamped to [0.5, 1.0], so the floor is overhead + half the
    // anchored compute ≈ 63 ms).
    assert!((0.06..0.135).contains(&gpu_lat), "gpu latency {gpu_lat}");
    let baseline = engine.mgpu_baseline();
    assert!(
        (0.5..=1.0).contains(&baseline.flop_scale()),
        "derived AAS scale {}",
        baseline.flop_scale()
    );
}
