//! Integration tests for the overload control plane: a real server
//! under a real burst, with service-time emulation, exercising all
//! three rungs of the admission ladder — degrade, shed, recover — and
//! the per-request `max_degradation` floor that keeps opted-out
//! traffic bit-identical to pre-overload behavior.

use edgebert::engine::InferenceRequest;
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::server::{Server, ServerConfig, ServerResponse, SubmitError};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert::{LadderStep, OverloadConfig, OverloadController, ServerStats};
use edgebert_tasks::{Task, TaskGenerator};
use std::sync::OnceLock;

fn runtime() -> &'static MultiTaskRuntime {
    static CELL: OnceLock<MultiTaskRuntime> = OnceLock::new();
    CELL.get_or_init(|| {
        MultiTaskRuntime::from_runtimes([TaskRuntime::from_artifacts(&TaskArtifacts::build(
            Task::Sst2,
            Scale::Test,
            0x0AD5,
        ))])
    })
}

fn tokens_for(n: usize, seed: u64) -> Vec<Vec<u32>> {
    let rt = runtime().runtime(Task::Sst2).expect("served");
    let gen = TaskGenerator::standard(Task::Sst2, rt.model().config.max_seq_len);
    gen.generate(n, seed)
        .examples()
        .iter()
        .map(|ex| ex.tokens.clone())
        .collect()
}

/// A twitchy ladder for test bursts: rungs trip at a fraction of the
/// default pressure bands so a few queued sentences are enough.
fn twitchy() -> OverloadConfig {
    OverloadConfig {
        enabled: true,
        degrade_enter: 0.2,
        degrade_exit: 0.1,
        shed_enter: 0.5,
        shed_exit: 0.25,
        ..OverloadConfig::default()
    }
}

/// Fires `n` tight-deadline sentences at one emulated-service shard as
/// fast as submission allows, waits everything out, and returns the
/// served responses plus the final stats. Shed refusals are collected
/// separately; any other submit error panics.
fn burst(
    cfg: ServerConfig,
    n: usize,
    target_s: f64,
    max_degradation: u8,
) -> (Vec<ServerResponse>, Vec<SubmitError>, ServerStats) {
    let server = Server::start(runtime(), cfg);
    let mut handles = Vec::new();
    let mut sheds = Vec::new();
    for tokens in tokens_for(n, 0x0B57) {
        let req = InferenceRequest::new(tokens)
            .with_latency_target(target_s)
            .with_max_degradation(max_degradation);
        match server.submit(Task::Sst2, req) {
            Ok(h) => handles.push(h),
            Err(e @ SubmitError::Shed { .. }) => sheds.push(e),
            Err(other) => panic!("burst admission failed: {other}"),
        }
    }
    let responses = handles
        .into_iter()
        .map(|h| h.wait().expect("workers outlive the burst"))
        .collect();
    (responses, sheds, server.shutdown())
}

fn burst_cfg(overload: OverloadConfig, n: usize) -> ServerConfig {
    ServerConfig {
        queue_capacity: n,
        emulate_service_time: true,
        overload,
        ..ServerConfig::default()
    }
}

/// The full ladder under one burst: later submissions are shed with a
/// usable retry hint, popped work degrades within its opt-in, and the
/// drained lane recovers to Nominal (transitions pair up).
#[test]
fn a_burst_walks_the_ladder_and_recovers() {
    let n = 24;
    let floor_s = runtime()
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .nominal_service_estimate_s();
    let (responses, sheds, stats) = burst(burst_cfg(twitchy(), n), n, 2.0 * floor_s, 2);

    assert_eq!(responses.len() + sheds.len(), n);
    assert!(stats.shed() >= 1, "the burst must trip the shed rung");
    assert_eq!(stats.shed(), sheds.len() as u64);
    assert!(
        stats.degraded() >= 1,
        "pressure must degrade at least one served sentence"
    );
    assert!(
        responses.iter().any(|r| r.degraded_notches > 0),
        "degradation must be visible on the responses too"
    );
    assert!(responses.iter().all(|r| r.degraded_notches <= 2));
    // The rung moved at least twice: up into Degrade/Shed and back
    // down at least one rung as the drain emptied the queue (recovery
    // steps one rung per observation, so the lane may legitimately
    // finish mid-descent).
    assert!(stats.ladder_step_changes() >= 2);
    for e in &sheds {
        match e {
            SubmitError::Shed {
                task,
                pressure,
                retry_after_hint_s,
            } => {
                assert_eq!(*task, Task::Sst2);
                assert!(*pressure > 0.0 && pressure.is_finite());
                assert!(*retry_after_hint_s > 0.0 && retry_after_hint_s.is_finite());
            }
            other => panic!("collected a non-shed error: {other:?}"),
        }
    }
}

/// `max_degradation = 0` (the default) is an absolute floor: even with
/// the ladder tripping around them, opted-out requests are never served
/// degraded.
#[test]
fn zero_max_degradation_is_never_degraded() {
    let n = 24;
    let floor_s = runtime()
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .nominal_service_estimate_s();
    let (responses, _sheds, stats) = burst(burst_cfg(twitchy(), n), n, 2.0 * floor_s, 0);
    assert_eq!(stats.degraded(), 0);
    assert!(responses.iter().all(|r| r.degraded_notches == 0));
}

/// The ladder ships disabled: a default-config server under the same
/// burst never sheds, never degrades, never moves a rung — the
/// pre-overload behavior, bit for bit (the equivalence oracles in
/// `server_serving.rs` pin the bits; this pins the counters).
#[test]
fn default_config_keeps_the_ladder_off() {
    assert!(!OverloadConfig::default().enabled);
    let n = 12;
    let floor_s = runtime()
        .runtime(Task::Sst2)
        .expect("served")
        .engine()
        .nominal_service_estimate_s();
    let (responses, sheds, stats) =
        burst(burst_cfg(OverloadConfig::default(), n), n, 2.0 * floor_s, 2);
    assert!(sheds.is_empty());
    assert_eq!(responses.len(), n);
    assert_eq!(stats.shed(), 0);
    assert_eq!(stats.degraded(), 0);
    assert_eq!(stats.ladder_step_changes(), 0);
    assert!(responses.iter().all(|r| r.degraded_notches == 0));
}

/// The per-class shed preference: on the shed rung, arrivals whose
/// remaining budget clears `shed_loose_budget_ratio × horizon` are
/// shed first — even though their loose budget would pass the
/// feasibility test and be admitted under the class-agnostic rule.
#[test]
fn loose_budget_classes_shed_first_on_the_shed_rung() {
    let n = 24;
    let rt = runtime().runtime(Task::Sst2).expect("served");
    let floor_s = rt.engine().nominal_service_estimate_s();
    let horizon_s = rt.engine().default_latency_target_s();
    let overload = OverloadConfig {
        shed_loose_budget_ratio: 2.0,
        ..twitchy()
    };
    let server = Server::start(runtime(), burst_cfg(overload, n + 4));
    // Drive the lane onto the shed rung with tight traffic, then probe
    // with a loose-class request the moment shedding starts.
    let mut tight_sheds = 0u64;
    let mut loose_outcomes = Vec::new();
    for tokens in tokens_for(n, 0x0B58) {
        let req = InferenceRequest::new(tokens.clone())
            .with_latency_target(2.0 * floor_s)
            .with_max_degradation(2);
        match server.submit(Task::Sst2, req) {
            Ok(h) => drop(h),
            Err(SubmitError::Shed { .. }) => {
                tight_sheds += 1;
                // The lane is on the shed rung right now: a request
                // with a budget at 3× the horizon is trivially
                // feasible (it outlasts the whole backlog) but loose —
                // the preference must shed it anyway.
                let loose = InferenceRequest::new(tokens).with_latency_target(3.0 * horizon_s);
                loose_outcomes.push(server.submit(Task::Sst2, loose).map(|_| ()));
            }
            Err(other) => panic!("burst admission failed: {other}"),
        }
    }
    let stats = server.shutdown();
    assert!(tight_sheds >= 1, "the burst must trip the shed rung");
    assert!(!loose_outcomes.is_empty());
    assert!(
        loose_outcomes
            .iter()
            .all(|o| matches!(o, Err(SubmitError::Shed { .. }))),
        "every loose-class probe on the shed rung must be shed first: {loose_outcomes:?}"
    );
    assert_eq!(
        stats.shed(),
        tight_sheds + loose_outcomes.len() as u64,
        "both classes' sheds land on the lane counter"
    );
}

/// The controller's hysteresis from the outside: holding pressure in
/// the dead band between exit and enter thresholds never moves the
/// rung, in either direction.
#[test]
fn hysteresis_dead_band_holds_the_rung() {
    let cfg = twitchy();
    let mut ctl = OverloadController::new(cfg);
    assert_eq!(ctl.step(), LadderStep::Nominal);
    // Dead band from below: between degrade_exit and degrade_enter.
    ctl.observe(0.15);
    assert_eq!(ctl.step(), LadderStep::Nominal);
    // Trip one rung, then hold the band: no exit, no further entry.
    ctl.observe(0.3);
    assert_eq!(ctl.step(), LadderStep::Degrade);
    ctl.observe(0.15);
    ctl.observe(0.3);
    assert_eq!(ctl.step(), LadderStep::Degrade);
    assert_eq!(ctl.step_changes(), 1);
}
