//! Integration tests for elastic serving: work-stealing migration of
//! parked sessions across lanes, pressure-driven autoscaling of shard
//! pools, and the contract that a disabled elastic config leaves the
//! server indistinguishable from a static pool (zero counters).

use edgebert::calibrate::SweepCache;
use edgebert::engine::{EngineBuilder, EntropyThresholds, InferenceRequest};
use edgebert::predictor::EntropyPredictor;
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert::{ElasticConfig, PreemptionPolicy, Server, ServerConfig};
use edgebert_model::{AlbertConfig, AlbertModel};
use edgebert_tasks::{Task, TaskGenerator, VocabLayout};
use edgebert_tensor::Rng;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Fixture {
    runtime: MultiTaskRuntime,
    tokens: Vec<u32>,
}

fn task_runtime(task: Task, seed: u64) -> (TaskRuntime, Vec<u32>) {
    let layout = VocabLayout::standard();
    let cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
    let mut rng = Rng::seed_from(seed);
    let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
    let gen = TaskGenerator::standard(task, cfg.max_seq_len);
    let data = gen.generate(12, 9);
    let cache = SweepCache::build(&model, &data);
    let pred = EntropyPredictor::train(&cache.entropy_dataset(), 40, 3);
    let lut = pred.to_lut(32, 1.1);
    let tokens = data.examples()[0].tokens.clone();
    // Strict thresholds: no early exit, so sessions run full depth and
    // every layer boundary is a live preemption point.
    let builder = EngineBuilder::new(Arc::new(model), Arc::new(lut))
        .uniform_thresholds(EntropyThresholds::uniform(0.0))
        .latency_target(60e-3);
    (TaskRuntime::from_builder(task, builder), tokens)
}

/// Two served tasks: a hot SST-2 lane and an idle QNLI lane whose
/// shard is free to roam.
fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let (sst2, tokens) = task_runtime(Task::Sst2, 41);
        let (qnli, _) = task_runtime(Task::Qnli, 43);
        Fixture {
            runtime: MultiTaskRuntime::from_runtimes([sst2, qnli]),
            tokens,
        }
    })
}

/// A preemptive, service-time-emulating config: shards are genuinely
/// busy for the modeled latency, so parked sessions sit on the lane
/// long enough for an idle foreign shard to take them.
fn preemptive_config(elastic: ElasticConfig) -> ServerConfig {
    ServerConfig {
        emulate_service_time: true,
        preemption: PreemptionPolicy::DeadlineGap(0.0),
        elastic,
        ..ServerConfig::default()
    }
}

#[test]
fn idle_foreign_shards_steal_parked_sessions() {
    let f = fixture();
    let server = Server::start(
        &f.runtime,
        preemptive_config(ElasticConfig {
            enabled: true,
            work_stealing: true,
            // Stealing only: the idle shard must not grab the tight
            // *fresh* job, just the parked session.
            autoscale: false,
            ..ElasticConfig::default()
        }),
    );
    // A loose sentence stretches its compute across a 400 ms budget;
    // once it is mid-flight, a tight arrival preempts it at a layer
    // boundary. The home shard serves the tight job, and the QNLI
    // shard — whose own lane is empty — steals the parked session.
    let loose = server
        .submit(
            Task::Sst2,
            InferenceRequest::new(f.tokens.clone()).with_latency_target(400e-3),
        )
        .expect("admitted");
    // Wait until the loose job is running (popped off the queue) so
    // the tight one cannot be popped first.
    while server.queued() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(10));
    let tight = server
        .submit(
            Task::Sst2,
            InferenceRequest::new(f.tokens.clone()).with_latency_target(50e-3),
        )
        .expect("admitted");

    let tight_resp = tight.wait().expect("worker alive");
    assert_eq!(tight_resp.task, Task::Sst2);
    let loose_resp = loose.wait().expect("worker alive");
    assert_eq!(loose_resp.task, Task::Sst2);
    assert!(
        loose_resp.preemptions >= 1,
        "the loose sentence must have been parked"
    );
    assert!(loose_resp.parked_s > 0.0);

    let stats = server.shutdown();
    assert_eq!(stats.served(), 2);
    assert_eq!(
        stats.stolen(),
        stats.migrated(),
        "every migration has exactly one thief"
    );
    assert!(
        stats.migrated() >= 1,
        "the parked SST-2 session must have crossed lanes: {stats:?}"
    );
    let sst2 = stats.lane(Task::Sst2).expect("lane");
    let qnli = stats.lane(Task::Qnli).expect("lane");
    assert!(sst2.migrated >= 1, "migrations count on the origin lane");
    assert!(qnli.stolen >= 1, "steals count on the thief's home lane");
    assert_eq!(qnli.submitted, 0, "the QNLI lane itself stayed idle");
}

#[test]
fn idle_shards_autoscale_onto_pressured_lanes() {
    let f = fixture();
    let server = Server::start(
        &f.runtime,
        ServerConfig {
            emulate_service_time: true,
            elastic: ElasticConfig {
                enabled: true,
                work_stealing: false,
                autoscale: true,
                grow_pressure: 0.2,
                ..ElasticConfig::default()
            },
            ..ServerConfig::default()
        },
    );
    // Flood the SST-2 lane: one shard at ~60 ms per emulated sentence
    // cannot drain 8 arrivals inside their horizon, so the pressure
    // signal clears the grow threshold and the idle QNLI shard
    // attaches as an extra drain.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            server
                .submit(
                    Task::Sst2,
                    InferenceRequest::new(f.tokens.clone()).with_latency_target(60e-3),
                )
                .expect("admitted")
        })
        .collect();
    for handle in handles {
        let resp = handle.wait().expect("worker alive");
        assert_eq!(resp.task, Task::Sst2);
    }
    let stats = server.shutdown();
    assert_eq!(stats.served(), 8);
    let sst2 = stats.lane(Task::Sst2).expect("lane");
    assert!(
        sst2.pool_resizes >= 2,
        "the flooded lane must have grown and shrunk: {stats:?}"
    );
    assert_eq!(stats.stolen(), 0, "stealing was disabled");
    assert_eq!(stats.migrated(), 0);
}

#[test]
fn disabled_elasticity_keeps_every_counter_at_zero() {
    let f = fixture();
    // The exact stealing scenario, elasticity off: the parked session
    // must be resumed by its home shard and no elastic counter moves.
    let server = Server::start(&f.runtime, preemptive_config(ElasticConfig::default()));
    let loose = server
        .submit(
            Task::Sst2,
            InferenceRequest::new(f.tokens.clone()).with_latency_target(400e-3),
        )
        .expect("admitted");
    while server.queued() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(10));
    let tight = server
        .submit(
            Task::Sst2,
            InferenceRequest::new(f.tokens.clone()).with_latency_target(50e-3),
        )
        .expect("admitted");
    tight.wait().expect("worker alive");
    let loose_resp = loose.wait().expect("worker alive");
    assert!(loose_resp.preemptions >= 1, "preemption still parks");

    let stats = server.shutdown();
    assert_eq!(stats.served(), 2);
    assert_eq!(stats.stolen(), 0);
    assert_eq!(stats.migrated(), 0);
    assert_eq!(stats.pool_resizes(), 0);
    let sst2 = stats.lane(Task::Sst2).expect("lane");
    assert!(
        sst2.resumed >= 1,
        "the home shard resumed its own parked session"
    );
}
