//! Integration tests for the serializable session checkpoint envelope:
//! a parked [`InferenceSession`] round-trips through the versioned
//! [`SessionCheckpoint`] wire form (serde → JSON → serde) and resumes
//! on a restoring engine **bit-identically** to the session that never
//! left the process. This is the contract elastic serving's
//! cross-process migration rests on.

use edgebert::calibrate::SweepCache;
use edgebert::engine::{EngineBuilder, EntropyThresholds, InferenceRequest};
use edgebert::predictor::EntropyPredictor;
use edgebert::session::{InferenceSession, SessionState};
use edgebert::{EdgeBertEngine, SESSION_CHECKPOINT_VERSION};
use edgebert_model::{AlbertConfig, AlbertModel};
use edgebert_tasks::{Task, TaskGenerator, VocabLayout};
use edgebert_tensor::Rng;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

struct Fixture {
    engine: EdgeBertEngine,
    tokens: Vec<u32>,
}

/// Strict thresholds (`et = 0`): no early exit, so every session runs
/// full depth and any layer boundary is a valid park point.
fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let layout = VocabLayout::standard();
        let cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
        let mut rng = Rng::seed_from(41);
        let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
        let gen = TaskGenerator::standard(Task::Sst2, cfg.max_seq_len);
        let data = gen.generate(12, 9);
        let cache = SweepCache::build(&model, &data);
        let pred = EntropyPredictor::train(&cache.entropy_dataset(), 40, 3);
        let lut = pred.to_lut(32, 1.1);
        let tokens = data.examples()[0].tokens.clone();
        let engine = EngineBuilder::new(Arc::new(model), Arc::new(lut))
            .uniform_thresholds(EntropyThresholds::uniform(0.0))
            .latency_target(200e-3)
            .build();
        Fixture { engine, tokens }
    })
}

/// Opens a session, steps `steps` layers, and parks it.
fn parked_session(
    engine: &EdgeBertEngine,
    request: &InferenceRequest,
    steps: usize,
) -> InferenceSession {
    let mut session = engine.begin(request);
    for _ in 0..steps {
        assert!(
            !session.is_complete(),
            "fixture must not exit before the park point"
        );
        session.step();
    }
    assert!(
        session.park(),
        "a running session parks at a layer boundary"
    );
    session
}

/// Resumes a session with `parked_s` charged and drives it to its
/// response.
fn resume_to_response(mut session: InferenceSession, parked_s: f64) -> edgebert::InferenceResponse {
    session.resume(parked_s);
    while !session.is_complete() {
        session.step();
    }
    session
        .response()
        .expect("a completed session carries its response")
}

#[test]
fn only_a_parked_session_checkpoints() {
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone());
    let mut session = f.engine.begin(&request);
    assert!(
        session.checkpoint().is_none(),
        "running sessions do not checkpoint"
    );
    session.step();
    assert!(session.checkpoint().is_none());
    assert!(session.park());
    let cp = session.checkpoint().expect("parked sessions checkpoint");
    assert_eq!(cp.version(), SESSION_CHECKPOINT_VERSION);
    assert_eq!(cp.layers_done(), session.layers_done());
    assert_eq!(cp.parked_s(), 0.0);
}

#[test]
fn wire_round_trip_resumes_bit_identically() {
    // parked → serialize → JSON → deserialize → restore → resume must
    // equal parked → resume, bit for bit, including the parked-time
    // charge feeding the resume DVFS decision.
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone()).with_latency_target(200e-3);
    for steps in 1..=3 {
        for parked_ms in [0.0, 5e-3, 20e-3] {
            let stayed = parked_session(&f.engine, &request, steps);
            let crossed = parked_session(&f.engine, &request, steps);
            let wire = serde::json::to_string(&crossed.checkpoint().expect("parked"));
            let cp: edgebert::SessionCheckpoint =
                serde::json::from_str(&wire).expect("the wire form deserializes");
            let restored = f.engine.restore_session(cp);
            assert_eq!(restored.state(), SessionState::Parked);
            assert_eq!(
                resume_to_response(restored, parked_ms),
                resume_to_response(stayed, parked_ms),
                "steps={steps} parked={parked_ms}s"
            );
        }
    }
}

#[test]
fn restored_sessions_serve_under_preemption_accounting() {
    // The restored session keeps its preemption count and parked-time
    // ledger: a second park/resume cycle accumulates on top of the
    // checkpointed state exactly as it would in-process.
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone()).with_latency_target(200e-3);
    let session = parked_session(&f.engine, &request, 1);
    let wire = serde::json::to_string(&session.checkpoint().expect("parked"));
    let cp: edgebert::SessionCheckpoint = serde::json::from_str(&wire).expect("deserializes");
    let mut restored = f.engine.restore_session(cp);
    assert_eq!(restored.preemptions(), 1);
    restored.resume(3e-3);
    restored.step();
    assert!(restored.park(), "restored sessions park again");
    let twice = restored.checkpoint().expect("parked again");
    assert_eq!(twice.layers_done(), 2);
    assert_eq!(twice.parked_s(), 3e-3);
}

#[test]
fn unsupported_versions_are_refused_not_misread() {
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone());
    let session = parked_session(&f.engine, &request, 1);
    let wire = serde::json::to_string(&session.checkpoint().expect("parked"));
    assert!(
        wire.contains("\"version\":2"),
        "version leads the envelope: {wire}"
    );
    let tampered = wire.replacen("\"version\":2", "\"version\":99", 1);
    let err = serde::json::from_str::<edgebert::SessionCheckpoint>(&tampered)
        .expect_err("a future version must not be silently misread");
    assert!(
        err.to_string().contains("version"),
        "the error names the version mismatch: {err}"
    );
}

#[test]
fn corrupted_layer_bookkeeping_is_refused() {
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone());
    let session = parked_session(&f.engine, &request, 1);
    let wire = serde::json::to_string(&session.checkpoint().expect("parked"));
    // Claim more layers done than the hidden state carries.
    let tampered = wire.replacen("\"layers_done\":1", "\"layers_done\":3", 1);
    assert!(
        serde::json::from_str::<edgebert::SessionCheckpoint>(&tampered).is_err(),
        "layer bookkeeping must agree with the hidden state"
    );
}

#[test]
#[should_panic(expected = "depth")]
fn restoring_onto_a_wrong_depth_engine_panics() {
    let f = fixture();
    let request = InferenceRequest::new(f.tokens.clone());
    let session = parked_session(&f.engine, &request, 1);
    let cp = session.checkpoint().expect("parked");

    let layout = VocabLayout::standard();
    let mut cfg = AlbertConfig::tiny(layout.vocab_size(), 2);
    cfg.num_layers = 6; // a deeper model than the checkpoint's
    let mut rng = Rng::seed_from(41);
    let model = AlbertModel::pretrained(cfg, &layout, &mut rng);
    let gen = TaskGenerator::standard(Task::Sst2, cfg.max_seq_len);
    let data = gen.generate(12, 9);
    let cache = SweepCache::build(&model, &data);
    let pred = EntropyPredictor::train(&cache.entropy_dataset(), 40, 3);
    let lut = pred.to_lut(32, 1.1);
    let other = EngineBuilder::new(Arc::new(model), Arc::new(lut)).build();
    let _ = other.restore_session(cp);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bit-identity contract across the whole (park layer × target
    /// × parked time) space the elastic server migrates over.
    #[test]
    fn round_trip_is_bit_identical_across_the_space(
        steps in 1usize..3,
        target_ms in 60.0f64..400.0,
        parked_ms in 0.0f64..30.0,
    ) {
        let f = fixture();
        let request = InferenceRequest::new(f.tokens.clone())
            .with_latency_target(target_ms * 1e-3);
        let stayed = parked_session(&f.engine, &request, steps);
        let crossed = parked_session(&f.engine, &request, steps);
        let wire = serde::json::to_string(&crossed.checkpoint().expect("parked"));
        let cp: edgebert::SessionCheckpoint =
            serde::json::from_str(&wire).expect("the wire form deserializes");
        let restored = f.engine.restore_session(cp);
        prop_assert_eq!(
            resume_to_response(restored, parked_ms * 1e-3),
            resume_to_response(stayed, parked_ms * 1e-3)
        );
    }
}
