//! Pins the telemetry hot-path contract: the disabled path allocates
//! nothing per request, and the enabled steady-state primitives (ring
//! record, histogram record, span-recorder emit) allocate nothing
//! either — rings are preallocated, events are `Copy`, histograms are
//! fixed arrays.
//!
//! One `#[test]` function on purpose: integration-test binaries run
//! their tests on parallel threads, and a second thread's allocations
//! would bleed into the global counter and flake the assertion.

use edgebert::telemetry::{
    SpanRecorder, Telemetry, TelemetryConfig, TraceEventKind, TraceRing, TraceSink,
};
use edgebert_tasks::Task;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Allocations observed while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn telemetry_hot_paths_do_not_allocate() {
    // --- Disabled path: the per-request cost of `telemetry: None` is
    // a skipped `if let` — provably allocation-free.
    let disabled: Option<Arc<Telemetry>> = None;
    let n = allocations_during(|| {
        for i in 0..10_000u64 {
            if let Some(hub) = &disabled {
                hub.record_at(0.0, Task::Sst2, i, TraceEventKind::Admitted);
            }
        }
    });
    assert_eq!(n, 0, "disabled telemetry path must not allocate");

    // --- Enabled steady state: every per-event primitive works on
    // preallocated storage. Warm the ring past capacity first so the
    // overwrite path (the steady state under load) is what's measured.
    let hub = Arc::new(Telemetry::new(
        TelemetryConfig {
            trace_capacity: 64,
            series_capacity: 8,
            ..TelemetryConfig::default()
        },
        Instant::now(),
    ));
    let recorder: SpanRecorder = hub.recorder(Task::Sst2, 1);
    recorder.emit(TraceEventKind::Admitted);

    let n = allocations_during(|| {
        for i in 0..10_000u64 {
            hub.record_at(
                i as f64,
                Task::Sst2,
                i,
                TraceEventKind::Popped { queue_delay_s: 0.0 },
            );
            recorder.emit(TraceEventKind::SegmentStart {
                layer: 1,
                voltage: 0.55,
                freq_hz: 20e6,
            });
            recorder.emit_at(
                i as f64,
                TraceEventKind::Completed {
                    verdict: true,
                    energy_j: 3e-4,
                },
            );
        }
    });
    assert_eq!(n, 0, "enabled ring record/emit must not allocate");

    // Standalone ring: record through the trait object too.
    let ring = TraceRing::new(16);
    let first = {
        let (events, _) = hub.trace_snapshot();
        events[0]
    };
    let n = allocations_during(|| {
        for _ in 0..10_000 {
            ring.record(first);
        }
    });
    assert_eq!(n, 0, "ring overwrite steady state must not allocate");

    // Histogram record: fixed arrays, pure arithmetic.
    let mut hist = edgebert::telemetry::LogHistogram::new();
    let n = allocations_during(|| {
        for i in 0..10_000 {
            hist.record(1e-6 * (1 + i % 997) as f64);
        }
    });
    assert_eq!(n, 0, "histogram record must not allocate");
    assert_eq!(hist.count(), 10_000);
}
