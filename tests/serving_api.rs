//! Integration tests for the owned request/response serving API:
//! wire-format round-trips, builder/legacy equivalence, engine
//! thread-safety, per-request service levels end to end, and
//! parallel-evaluation determinism.

use edgebert::engine::{
    DropTarget, EngineBuilder, EntropyThresholds, InferenceMode, InferenceRequest,
    InferenceResponse,
};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::serving::TaskRuntime;
use edgebert_tasks::Task;
use std::sync::OnceLock;

fn artifacts() -> &'static TaskArtifacts {
    static CELL: OnceLock<TaskArtifacts> = OnceLock::new();
    CELL.get_or_init(|| TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5EAF))
}

#[test]
fn request_round_trips_through_json() {
    let requests = [
        InferenceRequest::new(vec![3, 1, 4, 1, 5, 9, 2, 6]),
        InferenceRequest::new(vec![2, 7, 1828])
            .with_mode(InferenceMode::ConventionalEe)
            .with_latency_target(75e-3)
            .with_drop_target(DropTarget::TwoPercent),
        InferenceRequest::new(Vec::new()).with_mode(InferenceMode::Base),
    ];
    for req in &requests {
        let text = serde::json::to_string(req);
        let back: InferenceRequest = serde::json::from_str(&text).expect("request parses back");
        assert_eq!(&back, req, "wire text: {text}");
    }
    // Unset service levels serialize as null, set ones as numbers: the
    // distinction survives the wire.
    let wire = serde::json::to_string(&requests[0]);
    assert!(wire.contains("\"latency_target_s\":null"), "{wire}");
    let wire = serde::json::to_string(&requests[1]);
    assert!(wire.contains("\"latency_target_s\":0.075"), "{wire}");
}

#[test]
fn pre_queue_slack_request_json_still_parses() {
    // Wire compatibility: requests serialized before `elapsed_queue_s`
    // existed (or sent by clients that don't know about queues) must
    // parse with a zero stamp, not fail on the missing field.
    let old_wire = r#"{"tokens":[3,1,4],"mode":"LatencyAware","latency_target_s":0.05,"drop_target":"TwoPercent"}"#;
    let req: InferenceRequest = serde::json::from_str(old_wire).expect("old wire shape parses");
    assert_eq!(req.elapsed_queue_s, 0.0);
    assert_eq!(req.tokens, vec![3, 1, 4]);
    assert_eq!(req.latency_target_s, Some(0.05));
    assert_eq!(req.drop_target, Some(DropTarget::TwoPercent));
    // And a stamped request round-trips the stamp.
    let stamped = req.with_elapsed_queue_s(12e-3);
    let back: InferenceRequest =
        serde::json::from_str(&serde::json::to_string(&stamped)).expect("stamped parses");
    assert_eq!(back, stamped);

    // Same tolerance for the queue-pressure stretch cap: wire shapes
    // predating `stretch_cap_s` parse uncapped, and a capped request
    // round-trips the cap.
    assert_eq!(stamped.stretch_cap_s, None);
    let capped = stamped.with_stretch_cap_s(30e-3);
    let back: InferenceRequest =
        serde::json::from_str(&serde::json::to_string(&capped)).expect("capped parses");
    assert_eq!(back, capped);
    assert_eq!(back.effective_stretch_cap_s(), Some(30e-3));
}

#[test]
fn response_round_trips_through_json() {
    let art = artifacts();
    let engine = art.engine(50e-3);
    let ex = &art.dev.examples()[0];
    for mode in InferenceMode::all() {
        let resp = engine.serve(&InferenceRequest::new(ex.tokens.clone()).with_mode(mode));
        let text = serde::json::to_string(&resp);
        let back: InferenceResponse = serde::json::from_str(&text).expect("response parses back");
        assert_eq!(back, resp, "wire text: {text}");
    }
}

#[test]
fn builder_defaults_match_explicit_settings() {
    // The builder's documented defaults must be identical to spelling
    // every knob out — the equivalence the old positional constructor
    // relied on callers getting right.
    let art = artifacts();
    let implicit = EngineBuilder::new(art.model.clone(), art.lut.clone()).build();
    let explicit = EngineBuilder::new(art.model.clone(), art.lut.clone())
        .accelerator(edgebert_hw::AcceleratorConfig::energy_optimal())
        .workload(edgebert_hw::WorkloadParams::albert_base())
        .envm_cell(edgebert_envm::CellTech::Mlc2, 2.0)
        .uniform_thresholds(EntropyThresholds::uniform(0.2))
        .latency_target(50e-3)
        .drop_target(DropTarget::OnePercent)
        .build();
    assert_eq!(implicit.default_latency_target_s(), 50e-3);
    assert_eq!(implicit.default_drop_target(), DropTarget::OnePercent);
    for ex in art.dev.iter().take(6) {
        for mode in InferenceMode::all() {
            assert_eq!(
                implicit.run(&ex.tokens, mode),
                explicit.run(&ex.tokens, mode),
                "mode {mode:?}"
            );
        }
    }
}

#[test]
fn pipeline_engine_matches_hand_built_builder() {
    // `TaskArtifacts::engine_at` is sugar over the builder; the two
    // construction paths must produce identical engines.
    let art = artifacts();
    let sugar = art.engine_at(80e-3, DropTarget::TwoPercent, true);
    let by_hand = art
        .engine_builder()
        .workload(art.hardware_workload(true))
        .latency_target(80e-3)
        .drop_target(DropTarget::TwoPercent)
        .build();
    for ex in art.dev.iter().take(6) {
        assert_eq!(
            sugar.run(&ex.tokens, InferenceMode::LatencyAware),
            by_hand.run(&ex.tokens, InferenceMode::LatencyAware),
        );
    }
}

#[test]
fn engine_is_send_and_static() {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<edgebert::EdgeBertEngine>();
    assert_send::<edgebert::TaskRuntime>();
    assert_send::<edgebert::MultiTaskRuntime>();
}

#[test]
fn one_engine_serves_two_deadlines_with_different_vf_points() {
    // Acceptance scenario: a single TaskRuntime engine, two requests
    // that differ only in latency_target_s, landing on different DVFS
    // operating points.
    let art = artifacts();
    let rt = TaskRuntime::from_artifacts(art);
    // Mint a strict-threshold engine from the runtime so no sentence
    // exits at layer 1 and the DVFS decision always engages.
    let engine = rt
        .builder()
        .uniform_thresholds(EntropyThresholds::uniform(0.0))
        .build();
    let tokens = art.dev.examples()[0].tokens.clone();
    let tight = engine.serve(&InferenceRequest::new(tokens.clone()).with_latency_target(4e-3));
    let loose = engine.serve(&InferenceRequest::new(tokens).with_latency_target(400e-3));
    assert_eq!(tight.latency_target_s, 4e-3);
    assert_eq!(loose.latency_target_s, 400e-3);
    assert!(
        loose.result.voltage < tight.result.voltage,
        "loose {} V vs tight {} V",
        loose.result.voltage,
        tight.result.voltage
    );
    assert!(loose.result.freq_hz < tight.result.freq_hz);
    assert!(loose.result.energy_j < tight.result.energy_j);
    assert!(loose.result.deadline_met);
}

#[test]
fn responses_judge_every_mode_against_the_request_deadline() {
    // The bare engine Base/EE paths are unbounded baselines, but a
    // response echoes the request's target and must judge against it.
    let art = artifacts();
    let rt = TaskRuntime::from_artifacts(art);
    let tokens = art.dev.examples()[0].tokens.clone();
    for mode in [InferenceMode::Base, InferenceMode::ConventionalEe] {
        let hopeless = rt.serve(
            &InferenceRequest::new(tokens.clone())
                .with_mode(mode)
                .with_latency_target(1e-9),
        );
        assert!(!hopeless.result.deadline_met, "mode {mode:?}");
        let generous = rt.serve(
            &InferenceRequest::new(tokens.clone())
                .with_mode(mode)
                .with_latency_target(10.0),
        );
        assert!(generous.result.deadline_met, "mode {mode:?}");
    }
}

#[test]
fn empty_wire_requests_are_served_not_panicked() {
    // Requests arrive from the wire; a degenerate empty token list must
    // come back as a response, not take the engine down.
    let art = artifacts();
    let rt = TaskRuntime::from_artifacts(art);
    for mode in InferenceMode::all() {
        let resp = rt.serve(&InferenceRequest::new(Vec::new()).with_mode(mode));
        assert!(resp.result.exit_layer >= 1, "mode {mode:?}");
        assert!(resp.result.energy_j > 0.0, "mode {mode:?}");
    }
}

#[test]
fn parallel_evaluate_equals_sequential() {
    let art = artifacts();
    let engine = art.engine_at(100e-3, DropTarget::OnePercent, true);
    for mode in InferenceMode::all() {
        let seq = engine.evaluate_seq(&art.dev, mode);
        let par = engine.evaluate(&art.dev, mode);
        assert_eq!(seq, par, "mode {mode:?}");
        for threads in [2, 5, 16] {
            assert_eq!(
                seq,
                engine.evaluate_with_threads(&art.dev, mode, threads),
                "mode {mode:?}, {threads} threads"
            );
        }
    }
}

#[test]
fn batch_serving_matches_singles_across_mixed_service_levels() {
    let art = artifacts();
    let rt = TaskRuntime::from_artifacts(art);
    let requests: Vec<InferenceRequest> = art
        .dev
        .iter()
        .enumerate()
        .map(|(i, ex)| {
            let req = InferenceRequest::new(ex.tokens.clone());
            match i % 3 {
                0 => req.with_latency_target(30e-3),
                1 => req
                    .with_latency_target(150e-3)
                    .with_drop_target(DropTarget::FivePercent),
                _ => req.with_mode(InferenceMode::Base),
            }
        })
        .collect();
    let batched = rt.serve_batch(&requests);
    let singles: Vec<InferenceResponse> = requests.iter().map(|r| rt.serve(r)).collect();
    assert_eq!(batched, singles);
}
