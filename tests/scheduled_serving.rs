//! Integration tests for the EDF slack-aware batch scheduler: queue
//! ordering, output-order preservation, bit-identity with unscheduled
//! serving, the `serve_batch` wrapper, the load generator, and the
//! tail-latency report.

use edgebert::engine::{deadline_met, InferenceRequest, InferenceResponse};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::{DeadlineScheduler, SchedulePolicy, SchedulerConfig};
use edgebert::serving::{MultiTaskRuntime, ServeError, TaskRuntime};
use edgebert_bench::load::{
    class_reports, drain_load, estimate_service_s, generate, LoadSpec, TailReport, TrafficClass,
};
use edgebert_tasks::{Task, TaskGenerator};
use std::sync::OnceLock;

fn runtime() -> &'static MultiTaskRuntime {
    static CELL: OnceLock<MultiTaskRuntime> = OnceLock::new();
    CELL.get_or_init(|| {
        MultiTaskRuntime::from_runtimes([
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5CED)),
            TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Qnli, Scale::Test, 0x5CEE)),
        ])
    })
}

fn tokens_for(task: Task, n: usize, seed: u64) -> Vec<Vec<u32>> {
    let rt = runtime().runtime(task).expect("served");
    let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
    gen.generate(n, seed)
        .examples()
        .iter()
        .map(|ex| ex.tokens.clone())
        .collect()
}

fn cfg(policy: SchedulePolicy) -> SchedulerConfig {
    SchedulerConfig {
        workers: 1,
        max_batch: 4,
        policy,
        task_switch_s: 0.0,
        queue_aware_slack: false,
        pressure_stretch: false,
        overload: Default::default(),
        telemetry: None,
        energy: None,
    }
}

#[test]
fn edf_orders_mixed_deadlines_fifo_orders_arrivals() {
    let rt = runtime();
    let toks = tokens_for(Task::Sst2, 5, 21);
    // Submission order carries *descending* targets: the EDF dispatch
    // order must be the exact reverse of the FIFO one.
    let submit_all = |sched: &mut DeadlineScheduler| {
        for (i, tok) in toks.iter().enumerate() {
            sched.submit(
                Task::Sst2,
                InferenceRequest::new(tok.clone()).with_latency_target(0.5 - 0.1 * i as f64),
                0.0,
            );
        }
    };
    let starts = |policy| {
        let mut sched = DeadlineScheduler::new(rt, cfg(policy));
        submit_all(&mut sched);
        sched
            .drain()
            .into_iter()
            .map(|r| r.expect("served").start_s)
            .collect::<Vec<f64>>()
    };
    let fifo = starts(SchedulePolicy::Fifo);
    let edf = starts(SchedulePolicy::EarliestDeadline);
    for i in 0..toks.len() - 1 {
        assert!(fifo[i] < fifo[i + 1], "FIFO dispatches in arrival order");
        assert!(edf[i] > edf[i + 1], "EDF dispatches tightest-first");
    }
}

#[test]
fn drain_preserves_submission_order_and_serve_bit_identity() {
    let rt = runtime();
    let sst = tokens_for(Task::Sst2, 4, 22);
    let qnli = tokens_for(Task::Qnli, 4, 23);
    let mut sched = DeadlineScheduler::new(rt, cfg(SchedulePolicy::EarliestDeadline));
    let mut expected: Vec<InferenceResponse> = Vec::new();
    for (i, tok) in sst.iter().chain(&qnli).enumerate() {
        let task = if i < sst.len() {
            Task::Sst2
        } else {
            Task::Qnli
        };
        let req = InferenceRequest::new(tok.clone()).with_latency_target(20e-3 + 9e-3 * i as f64);
        let idx = sched.submit(task, req.clone(), 0.7e-3 * i as f64);
        assert_eq!(idx, i, "submission index is the output slot");
        expected.push(rt.try_serve(task, &req).expect("served task"));
    }
    let out = sched.drain();
    assert_eq!(out.len(), expected.len());
    for (i, (got, want)) in out.iter().zip(&expected).enumerate() {
        let got = got.as_ref().expect("served");
        assert_eq!(
            &got.response, want,
            "slot {i}: scheduling must not change what a sentence computes"
        );
        assert_eq!(
            got.deadline_met,
            deadline_met(got.sojourn_s, got.response.latency_target_s),
            "sojourn verdict uses the unified deadline rule"
        );
    }
}

#[test]
fn serve_batch_is_a_scheduler_wrapper_with_old_semantics() {
    let rt = runtime();
    let toks = tokens_for(Task::Sst2, 3, 24);
    let batch: Vec<(Task, InferenceRequest)> = vec![
        (Task::Sst2, InferenceRequest::new(toks[0].clone())),
        (Task::Mnli, InferenceRequest::new(vec![1, 2, 3])), // unserved
        (
            Task::Qnli,
            InferenceRequest::new(tokens_for(Task::Qnli, 1, 25)[0].clone())
                .with_latency_target(120e-3),
        ),
        (Task::Sst2, InferenceRequest::new(toks[1].clone())),
    ];
    let out = rt.try_serve_batch(&batch);
    assert_eq!(out.len(), batch.len());
    assert_eq!(
        out[1],
        Err(ServeError::TaskNotServed(Task::Mnli)),
        "unserved task comes back as a typed routing error"
    );
    for (i, (task, req)) in batch.iter().enumerate() {
        assert_eq!(out[i], rt.try_serve(*task, req), "slot {i}");
    }
    // Empty batch edge.
    assert!(rt.try_serve_batch(&[]).is_empty());
}

#[test]
fn load_generator_is_deterministic_and_well_formed() {
    let rt = runtime();
    let spec = LoadSpec {
        requests: 40,
        mean_interarrival_s: 2e-3,
        paced: false,
        classes: vec![
            TrafficClass {
                name: "tight",
                latency_target_s: 8e-3,
                weight: 0.5,
                task: None,
            },
            TrafficClass {
                name: "relaxed",
                latency_target_s: 80e-3,
                weight: 0.5,
                task: None,
            },
        ],
        seed: 0x10AD,
    };
    let a = generate(rt, &spec);
    let b = generate(rt, &spec);
    assert_eq!(a.len(), 40);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.task, y.task);
        assert_eq!(x.request, y.request);
        assert_eq!(x.arrival_s, y.arrival_s);
        assert_eq!(x.class, y.class);
    }
    let mut last = 0.0;
    for r in &a {
        assert!(r.arrival_s >= last, "arrivals are nondecreasing");
        last = r.arrival_s;
        assert!(r.class < spec.classes.len());
        assert_eq!(
            r.request.latency_target_s,
            Some(spec.classes[r.class].latency_target_s)
        );
        assert!(
            rt.runtime(r.task).is_some(),
            "load only targets served tasks"
        );
    }
}

#[test]
fn tail_report_percentiles_are_ordered_and_edf_protects_tight_traffic() {
    let rt = runtime();
    let service_s = estimate_service_s(rt, 0x5CED);
    let spec = LoadSpec {
        requests: 80,
        mean_interarrival_s: service_s * 1.15,
        paced: false,
        classes: vec![
            TrafficClass {
                name: "tight",
                latency_target_s: service_s * 3.0,
                weight: 0.35,
                task: None,
            },
            TrafficClass {
                name: "relaxed",
                latency_target_s: service_s * 25.0,
                weight: 0.65,
                task: None,
            },
        ],
        seed: 0x5CED,
    };
    let load = generate(rt, &spec);
    let fifo = drain_load(rt, &load, cfg(SchedulePolicy::Fifo));
    let edf = drain_load(rt, &load, cfg(SchedulePolicy::EarliestDeadline));
    for (a, b) in fifo.iter().zip(&edf) {
        assert_eq!(a.response, b.response, "policy changes timing, not results");
    }
    let fifo_rows = class_reports(&load, &fifo, &spec.classes);
    let edf_rows = class_reports(&load, &edf, &spec.classes);
    for (name, r) in fifo_rows.iter().chain(&edf_rows) {
        assert!(
            r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms,
            "{name}: {r:?}"
        );
        assert!((0.0..=1.0).contains(&r.violation_rate), "{name}");
    }
    // The acceptance bar: EDF must not worsen the tight class's tail
    // or violation rate under mixed near-capacity traffic.
    let (tight_fifo, tight_edf) = (&fifo_rows[0].1, &edf_rows[0].1);
    assert!(tight_edf.p99_ms <= tight_fifo.p99_ms);
    assert!(tight_edf.violation_rate <= tight_fifo.violation_rate);

    // Empty report edge.
    let empty = TailReport::from_scheduled(&fifo[0..0]);
    assert_eq!(empty.count, 0);
    assert_eq!(empty.violation_rate, 0.0);
}
