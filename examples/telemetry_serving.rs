//! The telemetry subsystem under real wall-clock load: the
//! `server_serving` traffic shape (two frame-paced lanes at ~83 % of
//! each lane's floor service rate) served by a queue-aware server with
//! [`ServerConfig::telemetry`] enabled.
//!
//! The run demonstrates — and the CI `telemetry-smoke` job gates on —
//! the observability acceptance contract:
//!
//! * every served request leaves a **well-formed span chain** in the
//!   trace ring (`Admitted → Popped → SegmentStart … → Completed`,
//!   monotone timestamps), dumped as JSONL;
//! * the per-lane **log-bucketed histograms** (queue delay, sojourn,
//!   step time, energy) are non-empty and render to Prometheus text;
//! * telemetry is **observation-only**: the serving quality gate from
//!   `server_serving` still holds with the subsystem on
//!   (`EDGEBERT_TELEMETRY_MAX_TIGHT_VIOLATION_PCT`, default 20 %).
//!
//! ```text
//! cargo run --release --example telemetry_serving
//! ```

use edgebert::engine::EntropyThresholds;
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::SchedulePolicy;
use edgebert::server::{Server, ServerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert::telemetry::{
    render_prometheus, render_trace_jsonl, span_chains, validate_span_chain, TelemetryConfig,
};
use edgebert_bench::load::{
    class_reports, estimate_service_s, generate_paced_streams, offered_utilization,
    render_server_stats, TailReport, TrafficClass,
};
use edgebert_tasks::Task;
use std::time::{Duration, Instant};

fn main() {
    println!("== EdgeBERT telemetry: trace spans + histograms under wall-clock load ==\n");
    println!(
        "loading two task runtimes (test scale; artifact cache: {})...",
        TaskArtifacts::artifact_dir().display()
    );
    let runtime = MultiTaskRuntime::from_runtimes([Task::Sst2, Task::Qnli].map(|task| {
        let art = TaskArtifacts::cached(task, Scale::Test, 0x5CED + task as u64);
        TaskRuntime::from_builder(
            task,
            art.engine_builder()
                .uniform_thresholds(EntropyThresholds::uniform(0.0))
                .workload(art.hardware_workload(true)),
        )
    }));

    let service_s = estimate_service_s(&runtime, 0x5EF0);
    let lane_interarrival_s = service_s * 1.2;
    let classes = vec![
        TrafficClass {
            name: "tight",
            latency_target_s: service_s * 3.0,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "relaxed",
            latency_target_s: service_s * 6.0,
            weight: 0.5,
            task: Some(Task::Qnli),
        },
    ];
    let requests_per_class = 60;
    let load = generate_paced_streams(
        &runtime,
        &classes,
        lane_interarrival_s,
        requests_per_class,
        0x5EF0,
    );
    let utilization = offered_utilization(service_s, lane_interarrival_s, 1, 1);
    println!(
        "generated {} requests over {:?}; floor service {:.2} ms, \
         per-lane inter-arrival {:.2} ms, per-lane offered utilization {:.0}%\n",
        load.len(),
        runtime.tasks(),
        service_s * 1e3,
        lane_interarrival_s * 1e3,
        utilization * 100.0,
    );

    let cfg = ServerConfig {
        shards_per_task: 1,
        queue_capacity: load.len(),
        policy: SchedulePolicy::EarliestDeadline,
        queue_aware_slack: true,
        slack_floor_s: 1e-3,
        emulate_service_time: true,
        telemetry: Some(TelemetryConfig::default()),
        ..ServerConfig::default()
    };
    println!("draining queue-aware with telemetry on...\n");
    let server = Server::start(&runtime, cfg);
    let epoch = Instant::now();
    let mut handles = Vec::with_capacity(load.len());
    for r in &load {
        let due = epoch + Duration::from_secs_f64(r.arrival_s);
        if let Some(gap) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(gap);
        }
        handles.push(
            server
                .submit(r.task, r.request.clone())
                .expect("lane capacity covers the generated load"),
        );
    }
    let mut served_ids = Vec::with_capacity(handles.len());
    let mut responses = Vec::with_capacity(handles.len());
    for h in handles {
        served_ids.push((h.task(), h.submission()));
        responses.push(h.wait().expect("shard workers outlive the drain"));
    }
    let (stats, snapshot) = server.shutdown_with_telemetry();
    let snapshot = snapshot.expect("telemetry was enabled");

    // --- Span chains: one well-formed chain per served request.
    let chains = span_chains(&snapshot.events);
    let mut validated = 0usize;
    for &(task, id) in &served_ids {
        let (_, chain) = chains
            .iter()
            .find(|((t, r), _)| *t == task && *r == id)
            .unwrap_or_else(|| panic!("no span chain for {task} #{id}"));
        validate_span_chain(chain)
            .unwrap_or_else(|e| panic!("malformed span chain for {task} #{id}: {e}"));
        validated += 1;
    }
    println!(
        "trace: {} events ({} dropped), {} span chains, {} validated end-to-end",
        snapshot.events.len(),
        snapshot.dropped_events,
        chains.len(),
        validated,
    );
    let jsonl = render_trace_jsonl(&snapshot.events);
    assert_eq!(jsonl.lines().count(), snapshot.events.len());
    println!(
        "\nJSONL trace excerpt (first 4 of {} lines):",
        snapshot.events.len()
    );
    for line in jsonl.lines().take(4) {
        println!("  {line}");
    }

    // --- Histograms: non-empty distributions on every lane.
    for lane in &snapshot.lanes {
        assert!(
            lane.histograms.queue_delay_s.count() > 0,
            "{}: queue-delay histogram must be non-empty",
            lane.task
        );
        assert!(
            lane.histograms.energy_per_request_j.count() > 0,
            "{}: energy histogram must be non-empty",
            lane.task
        );
    }
    let prom = render_prometheus(&snapshot);
    assert!(prom.contains("edgebert_queue_delay_seconds_bucket"));
    assert!(prom.contains("edgebert_energy_joules_bucket"));
    println!("\nPrometheus excerpt:");
    for line in prom
        .lines()
        .filter(|l| l.contains("edgebert_queue_delay_seconds"))
        .take(6)
    {
        println!("  {line}");
    }
    println!(
        "\nlane time-series: {} samples ({} dropped)",
        snapshot.samples.len(),
        snapshot.dropped_samples
    );

    // --- Stats snapshot with the histogram quantile section.
    println!("\n{}", render_server_stats(&stats));

    // --- Serving quality gate: telemetry must not cost the tight
    // class its deadline performance (same shape as `server-smoke`,
    // judged from the exact histogram quantiles).
    let rows = class_reports(&load, &responses, &classes);
    let tight = &rows[0].1;
    let tight_lane = stats.lane(Task::Sst2).expect("SST-2 lane served");
    let hist_report = TailReport::from_sojourn_histogram(
        &tight_lane.histograms.expect("telemetry on").sojourn_s,
        tight_lane.violations,
    );
    println!(
        "tight-class p99 sojourn: {:.2} ms (sampled) / {:.2} ms (histogram edge); \
         violations {:.1}%",
        tight.p99_ms,
        hist_report.p99_ms,
        tight.violation_rate * 100.0,
    );
    // The histogram quantile is an upper bound within one bucket width
    // (~15.5%) of the sampled percentile over the same lane.
    assert!(
        hist_report.p99_ms >= tight.p99_ms * 0.80,
        "histogram p99 {:.2} ms implausibly below sampled p99 {:.2} ms",
        hist_report.p99_ms,
        tight.p99_ms,
    );
    let max_tight_violation_pct: f64 = std::env::var("EDGEBERT_TELEMETRY_MAX_TIGHT_VIOLATION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    assert!(
        tight.violation_rate * 100.0 <= max_tight_violation_pct,
        "tight-class violation rate {:.1}% exceeds the pinned smoke threshold {:.1}%",
        tight.violation_rate * 100.0,
        max_tight_violation_pct,
    );
    println!(
        "\n(smoke gate: tight violations {:.1}% <= {:.1}% threshold, telemetry on)",
        tight.violation_rate * 100.0,
        max_tight_violation_pct
    );
}
