//! A voice-assistant-style stream of sentences under a hard latency
//! budget (the paper's motivating scenario, §1).
//!
//! Runs a stream of utterances through all three inference schemes and
//! shows how the DVFS controller picks a different voltage/frequency for
//! every sentence based on the predicted exit layer, while the unbounded
//! schemes burn nominal-voltage energy.
//!
//! ```text
//! cargo run --release --example latency_aware_assistant
//! ```

use edgebert::engine::InferenceMode;
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_tasks::Task;

fn main() {
    println!("== latency-aware assistant: QNLI stream at a 50 ms deadline ==\n");
    let artifacts = TaskArtifacts::build(Task::Qnli, Scale::Test, 0xED6E + 3);
    let engine = artifacts.engine_at(50e-3, 0, true);

    println!("{:<4} {:>5} {:>5} {:>8} {:>9} {:>10}  deadline", "#", "pred", "exit", "V", "F (MHz)", "energy");
    let mut lai_total = 0.0f64;
    let mut ee_total = 0.0f64;
    let mut base_total = 0.0f64;
    for (i, ex) in artifacts.dev.iter().take(10).enumerate() {
        let r = engine.run_latency_aware(&ex.tokens);
        lai_total += r.energy_j;
        ee_total += engine.run_conventional_ee(&ex.tokens).energy_j;
        base_total += engine.run_base(&ex.tokens).energy_j;
        println!(
            "{:<4} {:>5} {:>5} {:>7.3}V {:>9.0} {:>9.1}µJ  {}",
            i + 1,
            r.predicted_layer.unwrap_or(0),
            r.exit_layer,
            r.voltage,
            r.freq_hz / 1e6,
            r.energy_j * 1e6,
            if r.deadline_met { "met" } else { "MISSED" },
        );
    }
    println!("\nstream energy: LAI {:.1} µJ | EE {:.1} µJ | Base {:.1} µJ", lai_total * 1e6, ee_total * 1e6, base_total * 1e6);
    println!("LAI saves {:.1}x vs Base, {:.1}x vs EE", base_total / lai_total, ee_total / lai_total);

    // Aggregate accuracy check across the modes.
    for mode in [InferenceMode::Base, InferenceMode::ConventionalEe, InferenceMode::LatencyAware] {
        let agg = engine.evaluate(&artifacts.dev, mode);
        println!(
            "{:?}: accuracy {:.2}, avg exit {:.2}, avg energy {:.1} µJ",
            mode, agg.accuracy, agg.avg_exit_layer, agg.avg_energy_j * 1e6
        );
    }
}
