//! A voice-assistant-style stream of sentences under hard latency
//! budgets (the paper's motivating scenario, §1).
//!
//! One owned engine serves a stream of utterances whose deadlines
//! alternate per request — a 50 ms voice-assistant budget and a 200 ms
//! translation budget — and the DVFS controller picks a different
//! voltage/frequency point for every sentence from its predicted exit
//! layer *and* its own deadline. The unbounded schemes burn
//! nominal-voltage energy for comparison.
//!
//! ```text
//! cargo run --release --example latency_aware_assistant
//! ```

use edgebert::engine::{DropTarget, InferenceRequest};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_tasks::Task;

fn main() {
    println!("== latency-aware assistant: QNLI stream at mixed 50/200 ms deadlines ==\n");
    let artifacts = TaskArtifacts::build(Task::Qnli, Scale::Test, 0xED6E + 3);
    let engine = artifacts
        .engine_builder()
        .workload(artifacts.hardware_workload(true))
        .latency_target(50e-3)
        .drop_target(DropTarget::OnePercent)
        .build();

    // Build the mixed-deadline request stream: even sentences are
    // "assistant" traffic (50 ms), odd ones "translation" (200 ms).
    let requests: Vec<InferenceRequest> = artifacts
        .dev
        .iter()
        .take(10)
        .enumerate()
        .map(|(i, ex)| {
            let target = if i % 2 == 0 { 50e-3 } else { 200e-3 };
            InferenceRequest::new(ex.tokens.clone()).with_latency_target(target)
        })
        .collect();

    // Serve the whole stream across worker threads, in request order.
    let responses = engine.serve_batch(&requests);

    println!(
        "{:<4} {:>8} {:>5} {:>5} {:>8} {:>9} {:>10}  deadline",
        "#", "target", "pred", "exit", "V", "F (MHz)", "energy"
    );
    let mut lai_total = 0.0f64;
    let mut ee_total = 0.0f64;
    let mut base_total = 0.0f64;
    for (i, (req, resp)) in requests.iter().zip(&responses).enumerate() {
        let r = &resp.result;
        lai_total += r.energy_j;
        ee_total += engine.run_conventional_ee(&req.tokens).energy_j;
        base_total += engine.run_base(&req.tokens).energy_j;
        println!(
            "{:<4} {:>5.0} ms {:>5} {:>5} {:>7.3}V {:>9.0} {:>9.1}µJ  {}",
            i + 1,
            resp.latency_target_s * 1e3,
            r.predicted_layer.unwrap_or(0),
            r.exit_layer,
            r.voltage,
            r.freq_hz / 1e6,
            r.energy_j * 1e6,
            if r.deadline_met { "met" } else { "MISSED" },
        );
    }
    println!(
        "\nstream energy: LAI {:.1} µJ | EE {:.1} µJ | Base {:.1} µJ",
        lai_total * 1e6,
        ee_total * 1e6,
        base_total * 1e6
    );
    println!(
        "LAI saves {:.1}x vs Base, {:.1}x vs EE",
        base_total / lai_total,
        ee_total / lai_total
    );

    // Aggregate accuracy check across the modes (multi-threaded
    // evaluate; identical to a sequential pass).
    for (mode, agg) in engine.evaluate_modes(&artifacts.dev) {
        println!(
            "{:?}: accuracy {:.2}, avg exit {:.2}, avg energy {:.1} µJ",
            mode,
            agg.accuracy,
            agg.avg_exit_layer,
            agg.avg_energy_j * 1e6
        );
    }
}
