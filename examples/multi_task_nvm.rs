//! Multi-task embeddings in non-volatile memory (paper §4, Fig. 11).
//!
//! The word-embedding table is shared across NLP tasks, so EdgeBERT
//! stores it once in on-chip MLC2 ReRAM (bitmask in SLC). This example
//! (1) encodes a pruned table into the stored layout, (2) runs a small
//! fault-injection campaign across cell technologies, and (3) compares
//! the power-on cost against the conventional DRAM-reload flow.
//!
//! ```text
//! cargo run --release --example multi_task_nvm
//! ```

use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_envm::{CampaignResult, CellTech, FaultInjector, StoredEmbedding};
use edgebert_hw::memory::{sentence_embedding_bits, BootComparison};
use edgebert_tasks::Task;
use edgebert_tensor::Rng;

fn main() {
    println!("== multi-task eNVM embedding storage ==\n");
    let artifacts = TaskArtifacts::build(Task::Sst2, Scale::Test, 0xED6E + 2);

    let table = &artifacts.model.embedding.table.value;
    let stored = StoredEmbedding::encode(table, 4);
    println!(
        "embedding table: {}x{}, {:.0}% sparse, stored as {:.3} MB (bitmask in SLC, FP8 payload in MLC2)",
        table.rows(),
        table.cols(),
        table.sparsity() * 100.0,
        stored.footprint_mb(),
    );

    // Fault-injection across cell technologies.
    let mut rng = Rng::seed_from(7);
    let mut eval_model = edgebert_model::AlbertModel::clone(&artifacts.model);
    println!("\nfault injection (20 trials each, dev accuracy %):");
    for tech in CellTech::all() {
        let injector = FaultInjector::new(tech);
        let result = CampaignResult::run(&stored, &injector, 20, &mut rng, |img| {
            eval_model.embedding.set_table(img.decode());
            eval_model.evaluate_accuracy(&artifacts.dev) * 100.0
        });
        println!(
            "  {tech}: mean {:.2}, min {:.2} ({:.1} faulted cells/trial)",
            result.mean, result.min, result.mean_faults
        );
    }

    // Power-on comparison at the paper's 1.73 MB scale.
    let bits = sentence_embedding_bits(128, 128, 0.4);
    let cmp = BootComparison::standard(1.73, bits);
    println!("\npower-on cost (1.73 MB table, first sentence):");
    println!(
        "  EdgeBERT (ReRAM-resident): {:.2} µs, {:.1} nJ",
        cmp.edgebert.latency_s * 1e6,
        cmp.edgebert.energy_j * 1e9
    );
    println!(
        "  conventional (DRAM->SRAM): {:.0} µs, {:.2} mJ",
        cmp.conventional.latency_s * 1e6,
        cmp.conventional.energy_j * 1e3
    );
    println!(
        "  advantage: ~{:.0}x latency, ~{:.0}x energy",
        cmp.latency_advantage(),
        cmp.energy_advantage()
    );
}
