//! Slack-aware scheduling: tight deadlines stop queueing behind
//! relaxed ones.
//!
//! Builds two task runtimes, generates a mixed-deadline arrival
//! process (a tight voice-assistant class interleaved with relaxed
//! translation traffic, arriving near one accelerator lane's
//! capacity), and drains it twice through the [`DeadlineScheduler`]: once
//! FIFO (the old `serve_batch` order) and once earliest-deadline-first.
//! The per-class tail report shows the point of the scheduler — under
//! FIFO the tight class eats head-of-line blocking delay behind
//! relaxed sentences that could afford to wait; under EDF it overtakes
//! them, and its p99 sojourn and violation rate drop while the relaxed
//! class stays comfortably inside its budget.
//!
//! ```text
//! cargo run --release --example scheduled_serving
//! ```

use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::{SchedulePolicy, SchedulerConfig};
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    class_reports, drain_load, estimate_service_s, generate, render_comparison, LoadSpec,
    TrafficClass,
};
use edgebert_tasks::Task;

fn main() {
    println!("== EdgeBERT scheduled serving: EDF vs FIFO ==\n");
    println!("training two tasks (test scale)...");
    let runtime = MultiTaskRuntime::from_runtimes([
        TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Sst2, Scale::Test, 0x5CED)),
        TaskRuntime::from_artifacts(&TaskArtifacts::build(Task::Qnli, Scale::Test, 0x5CEE)),
    ]);

    let service_s = estimate_service_s(&runtime, 0x5CED);
    let spec = LoadSpec {
        requests: 160,
        // Near-capacity lane (~87 % utilization): bursts form queues,
        // and the policy decides who absorbs the delay.
        mean_interarrival_s: service_s * 1.15,
        paced: false,
        classes: vec![
            TrafficClass {
                name: "tight",
                latency_target_s: service_s * 3.0,
                weight: 0.35,
                task: None,
            },
            TrafficClass {
                name: "relaxed",
                latency_target_s: service_s * 25.0,
                weight: 0.65,
                task: None,
            },
        ],
        seed: 0x5CED,
    };
    let load = generate(&runtime, &spec);
    println!(
        "generated {} requests over {:?}; mean service {:.2} ms, mean inter-arrival {:.2} ms\n",
        load.len(),
        runtime.tasks(),
        service_s * 1e3,
        spec.mean_interarrival_s * 1e3,
    );

    let cfg = |policy| SchedulerConfig {
        workers: 1,
        max_batch: 8,
        policy,
        task_switch_s: 0.0,
        queue_aware_slack: false,
        pressure_stretch: false,
        overload: Default::default(),
        telemetry: None,
        energy: None,
    };
    let fifo = drain_load(&runtime, &load, cfg(SchedulePolicy::Fifo));
    let edf = drain_load(&runtime, &load, cfg(SchedulePolicy::EarliestDeadline));

    // Same requests, same engines: what each sentence computed is
    // bit-identical across policies; only when it ran differs.
    for (a, b) in fifo.iter().zip(&edf) {
        assert_eq!(a.response, b.response);
    }

    let fifo_rows = class_reports(&load, &fifo, &spec.classes);
    let edf_rows = class_reports(&load, &edf, &spec.classes);
    println!("{}", render_comparison(&fifo_rows, &edf_rows));

    let (tight_fifo, tight_edf) = (&fifo_rows[0].1, &edf_rows[0].1);
    println!(
        "tight-class p99: {:.2} ms (FIFO) -> {:.2} ms (EDF); violations {:.1}% -> {:.1}%",
        tight_fifo.p99_ms,
        tight_edf.p99_ms,
        tight_fifo.violation_rate * 100.0,
        tight_edf.violation_rate * 100.0,
    );
    assert!(
        tight_edf.p99_ms <= tight_fifo.p99_ms
            && tight_edf.violation_rate <= tight_fifo.violation_rate,
        "EDF must not worsen the tight class"
    );
    println!("\n(per-request results are bit-identical across policies; only the timeline moves)");
}
