//! Multi-task serving: one deployment, four GLUE tasks, mixed
//! deadlines (the paper's §4 multi-task scenario behind the
//! request/response API).
//!
//! Builds a [`MultiTaskRuntime`] over MNLI, QQP, SST-2, and QNLI, then
//! serves a mixed-task, mixed-deadline batch the way edge traffic
//! arrives: interleaved, each request carrying its own task and
//! latency budget. Engines are owned and `Send`, so the batch fans out
//! across worker threads.
//!
//! ```text
//! cargo run --release --example multi_task_serving
//! ```

use edgebert::engine::{DropTarget, InferenceRequest};
use edgebert::pipeline::Scale;
use edgebert::server::{ElasticConfig, Server, ServerConfig};
use edgebert::serving::MultiTaskRuntime;
use edgebert_tasks::{Task, TaskGenerator};

fn main() {
    println!("== EdgeBERT multi-task serving ==\n");
    println!("training all four GLUE tasks (test scale)...");
    let runtime = MultiTaskRuntime::build(Scale::Test, 0xED6E);
    println!("serving tasks: {:?}\n", runtime.tasks());

    // A mixed stream: one sentence per task, cycling deadlines between
    // voice-assistant (50 ms) and translation (200 ms) budgets, and
    // between the 1 % and 5 % accuracy tiers.
    let mut batch = Vec::new();
    for (i, &task) in Task::all().iter().enumerate() {
        let rt = runtime.runtime(task).expect("task is served");
        let gen = TaskGenerator::standard(task, rt.model().config.max_seq_len);
        let data = gen.generate(2, 0xBEEF + i as u64);
        for (j, ex) in data.iter().enumerate() {
            let (target, drop) = if (i + j) % 2 == 0 {
                (50e-3, DropTarget::OnePercent)
            } else {
                (200e-3, DropTarget::FivePercent)
            };
            batch.push((
                task,
                InferenceRequest::new(ex.tokens.clone())
                    .with_latency_target(target)
                    .with_drop_target(drop),
            ));
        }
    }

    let responses = runtime.try_serve_batch(&batch);
    println!(
        "{:<8} {:>8} {:>6} {:>5} {:>8} {:>10}  deadline",
        "task", "target", "tier", "exit", "V", "energy"
    );
    for ((task, _), resp) in batch.iter().zip(&responses) {
        let resp = resp.as_ref().expect("all batch tasks are served");
        let r = &resp.result;
        println!(
            "{:<8} {:>5.0} ms {:>6} {:>5} {:>7.3}V {:>9.1}µJ  {}",
            task.to_string(),
            resp.latency_target_s * 1e3,
            format!("{:.0}%", resp.drop_target.fraction() * 100.0),
            r.exit_layer,
            r.voltage,
            r.energy_j * 1e6,
            if r.deadline_met { "met" } else { "MISSED" },
        );
    }

    // The routing table is live: an unserved task is refused with a
    // typed error, not misrouted or silently dropped.
    let stray = InferenceRequest::new(vec![1, 2, 3]);
    let empty = MultiTaskRuntime::default();
    assert_eq!(
        empty.try_serve(Task::Sst2, &stray),
        Err(edgebert::serving::ServeError::TaskNotServed(Task::Sst2))
    );
    println!("\n(an empty runtime refuses requests rather than misrouting them)");

    // The same four lanes, served elastically: a skewed burst lands
    // entirely on SST-2 while the other three shards idle, and the
    // pressure signal lets the idle shards attach to the hot lane as
    // extra drains (ServerConfig::elastic; disabled by default).
    println!("\nskewed burst on the SST-2 lane, elastic shard pools on...");
    let server = Server::start(
        &runtime,
        ServerConfig {
            emulate_service_time: true,
            elastic: ElasticConfig {
                enabled: true,
                grow_pressure: 0.05,
                ..ElasticConfig::default()
            },
            ..ServerConfig::default()
        },
    );
    let sst2 = runtime.runtime(Task::Sst2).expect("task is served");
    let gen = TaskGenerator::standard(Task::Sst2, sst2.model().config.max_seq_len);
    let burst = gen.generate(32, 0xE1A5);
    let handles: Vec<_> = burst
        .iter()
        .map(|ex| {
            server
                .submit(
                    Task::Sst2,
                    InferenceRequest::new(ex.tokens.clone()).with_latency_target(100e-3),
                )
                .expect("admitted")
        })
        .collect();
    for h in handles {
        h.wait().expect("workers outlive the burst");
    }
    let stats = server.shutdown();
    let hot = stats.lane(Task::Sst2).expect("lane");
    println!(
        "served {} on the hot lane; pool resizes {} (foreign shards \
         attached/detached), sessions stolen across lanes {}",
        hot.served,
        hot.pool_resizes,
        stats.stolen(),
    );
}
