//! Design-space exploration of the accelerator (paper Fig. 8).
//!
//! Sweeps the PU MAC vector size and prints per-sentence latency/energy
//! for full 12-layer ALBERT-base inference, with and without adaptive
//! attention span and compressed sparse execution, against the Jetson
//! TX2 mobile-GPU baseline. No model training required — this exercises
//! the hardware model alone.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use edgebert::backend::{InferenceBackend, MobileGpuBackend};
use edgebert_hw::report::AreaPowerReport;
use edgebert_hw::{AcceleratorConfig, AcceleratorSim, MobileGpu, WorkloadParams};
use edgebert_tasks::Task;

fn main() {
    println!("== EdgeBERT accelerator design-space exploration ==\n");
    let task = Task::Mnli;
    let base = WorkloadParams::albert_base();
    let optimized = WorkloadParams::albert_base()
        .with_optimizations(task.paper_encoder_sparsity(), &task.paper_head_spans());

    println!(
        "{:<4} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "n", "latency", "energy", "opt. latency", "opt. energy", "area"
    );
    let mut best: Option<(usize, f64)> = None;
    for n in [2usize, 4, 8, 16, 32] {
        let cfg = AcceleratorConfig::with_mac_vector_size(n);
        let sim = AcceleratorSim::new(cfg);
        let cost = sim.run_layers_nominal(&sim.layer_workload(&base), 12);
        let opt = sim.run_layers_nominal(&sim.layer_workload(&optimized), 12);
        let area = AreaPowerReport::at_config(&cfg).total_area_mm2();
        println!(
            "{:<4} {:>9.2} ms {:>9.2} mJ {:>11.2} ms {:>9.2} mJ {:>7.2} mm²",
            n,
            cost.seconds * 1e3,
            cost.energy_j * 1e3,
            opt.seconds * 1e3,
            opt.energy_j * 1e3,
            area,
        );
        if best.is_none() || opt.energy_j < best.unwrap().1 {
            best = Some((n, opt.energy_j));
        }
    }
    let (best_n, _) = best.expect("sweep is non-empty");
    println!("\nenergy-optimal MAC vector size: n = {best_n} (paper: n = 16)");

    // The baseline rows go through the backend trait on the *same*
    // workload the accelerator costs, so the AAS FLOP reduction
    // transfers to the GPU (sparsity does not — dense kernels can't
    // exploit it) and the comparison is apples to apples.
    let gpu = MobileGpuBackend::from_workload(MobileGpu::tegra_x2(), &optimized);
    let gpu_full = gpu.full_inference(12);
    let sim16 = AcceleratorSim::new(AcceleratorConfig::energy_optimal());
    let acc = sim16.run_layers_nominal(&sim16.layer_workload(&optimized), 12);
    println!(
        "vs Jetson TX2 ({} backend, AAS FLOP scale {:.2}): {:.0} ms / {:.0} mJ per sentence \
         -> accelerator is {:.0}x more energy-efficient",
        gpu.name(),
        gpu.flop_scale(),
        gpu_full.seconds * 1e3,
        gpu_full.energy_j * 1e3,
        gpu_full.energy_j / acc.energy_j,
    );
}
