//! Wall-clock serving with queue-aware DVFS slack: the `edgebert::server`
//! subsystem under real concurrent load.
//!
//! Everything before this example ran on a virtual timeline. Here two
//! task runtimes are served by a real [`Server`] — per-task engine
//! shards on worker threads, bounded EDF lanes, service-time emulation
//! holding each lane for the modeled hardware latency — and two
//! frame-paced request streams (a tight voice-assistant cadence on
//! SST-2, a relaxed translation cadence on QNLI) arrive in real time
//! at ~83 % of each lane's floor service rate. The load is the DVFS
//! worst case: strict thresholds, so no sentence exits at layer 1 and
//! every sentence asks the controller for an operating point.
//!
//! The comparison is the module's reason to exist. A **slack-blind**
//! server hands every sentence its full latency target as compute
//! budget, so DVFS stretches compute into a deadline that queueing
//! already half-spent: lanes stay busy longer, the backlog compounds,
//! and any queued sentence misses by construction. The **queue-aware**
//! server measures each job's real wait at pop time and hands the
//! engine the remaining slack — queued sentences speed up, lanes free
//! sooner, and the tight class's p99 sojourn and violation rate
//! collapse.
//!
//! ```text
//! cargo run --release --example server_serving
//! ```
//!
//! The CI `server-smoke` job runs this binary: it exits non-zero if
//! the queue-aware server fails to beat the slack-blind baseline on
//! the tight class, or if the tight-class violation rate exceeds the
//! pinned threshold (`EDGEBERT_SMOKE_MAX_TIGHT_VIOLATION_PCT`,
//! default 20 %).

use edgebert::engine::EntropyThresholds;
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert::scheduler::SchedulePolicy;
use edgebert::server::ServerConfig;
use edgebert::serving::{MultiTaskRuntime, TaskRuntime};
use edgebert_bench::load::{
    class_reports, drain_load_wall_clock, estimate_service_s, generate_paced_streams,
    offered_utilization, render_comparison_labeled, TrafficClass,
};
use edgebert_tasks::Task;

fn main() {
    println!("== EdgeBERT wall-clock serving: queue-aware vs slack-blind DVFS ==\n");
    println!(
        "loading two task runtimes (test scale; artifact cache: {})...",
        TaskArtifacts::artifact_dir().display()
    );
    // Strict thresholds: every sentence runs to its forecast depth and
    // engages DVFS — the regime where the compute budget matters most.
    let runtime = MultiTaskRuntime::from_runtimes([Task::Sst2, Task::Qnli].map(|task| {
        let art = TaskArtifacts::cached(task, Scale::Test, 0x5CED + task as u64);
        TaskRuntime::from_builder(
            task,
            art.engine_builder()
                .uniform_thresholds(EntropyThresholds::uniform(0.0))
                .workload(art.hardware_workload(true)),
        )
    }));

    let service_s = estimate_service_s(&runtime, 0x5EF0);
    // Each class is bound to its application's task — the paper's
    // deployment: the voice assistant *is* SST-2 traffic, the
    // translator QNLI — so each lane rides its own deadline tier, on
    // its own fixed cadence (the frame-paced edge-pipeline shape).
    // Per-lane offered utilization of the floor service rate: ~83 %.
    //
    // The arithmetic of the comparison: a slack-blind sentence
    // *always* computes for its full target (3 × or 6 × the floor) —
    // several times the lane's 1.2 × floor arrival gap — so the
    // backlog compounds without bound and every queued sentence misses
    // by construction. A queue-aware sentence computes for
    // `target − wait`: the lane settles where service equals the
    // arrival gap, and every feasible sentence lands exactly on its
    // deadline.
    let lane_interarrival_s = service_s * 1.2;
    let classes = vec![
        TrafficClass {
            name: "tight",
            latency_target_s: service_s * 3.0,
            weight: 0.5,
            task: Some(Task::Sst2),
        },
        TrafficClass {
            name: "relaxed",
            latency_target_s: service_s * 6.0,
            weight: 0.5,
            task: Some(Task::Qnli),
        },
    ];
    let requests_per_class = 60;
    let load = generate_paced_streams(
        &runtime,
        &classes,
        lane_interarrival_s,
        requests_per_class,
        0x5EF0,
    );
    let utilization = offered_utilization(service_s, lane_interarrival_s, 1, 1);
    println!(
        "generated {} requests over {:?}; floor service {:.2} ms, \
         per-lane inter-arrival {:.2} ms, per-lane offered utilization {:.0}%\n",
        load.len(),
        runtime.tasks(),
        service_s * 1e3,
        lane_interarrival_s * 1e3,
        utilization * 100.0,
    );
    assert!(
        utilization >= 0.8,
        "the comparison is only meaningful under load"
    );

    let cfg = |queue_aware_slack| ServerConfig {
        shards_per_task: 1,
        queue_capacity: load.len(),
        policy: SchedulePolicy::EarliestDeadline,
        queue_aware_slack,
        slack_floor_s: 1e-3,
        emulate_service_time: true,
        ..ServerConfig::default()
    };
    println!("draining slack-blind (DVFS budgets ignore queueing delay)...");
    let blind = drain_load_wall_clock(&runtime, &load, cfg(false));
    println!("draining queue-aware (DVFS budgets see remaining slack)...\n");
    let aware = drain_load_wall_clock(&runtime, &load, cfg(true));

    let blind_rows = class_reports(&load, &blind, &classes);
    let aware_rows = class_reports(&load, &aware, &classes);
    println!(
        "{}",
        render_comparison_labeled("blind", &blind_rows, "aware", &aware_rows)
    );

    let (tight_blind, tight_aware) = (&blind_rows[0].1, &aware_rows[0].1);
    println!(
        "tight-class p99 sojourn: {:.2} ms (blind) -> {:.2} ms (aware); \
         violations {:.1}% -> {:.1}%",
        tight_blind.p99_ms,
        tight_aware.p99_ms,
        tight_blind.violation_rate * 100.0,
        tight_aware.violation_rate * 100.0,
    );

    // Smoke gates (the CI `server-smoke` job rides on these asserts).
    assert!(
        tight_aware.p99_ms < tight_blind.p99_ms,
        "queue-aware slack must strictly improve the tight class's p99 sojourn"
    );
    assert!(
        tight_aware.violation_rate < tight_blind.violation_rate,
        "queue-aware slack must strictly improve the tight class's violation rate"
    );
    let max_tight_violation_pct: f64 = std::env::var("EDGEBERT_SMOKE_MAX_TIGHT_VIOLATION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    assert!(
        tight_aware.violation_rate * 100.0 <= max_tight_violation_pct,
        "tight-class violation rate {:.1}% exceeds the pinned smoke threshold {:.1}%",
        tight_aware.violation_rate * 100.0,
        max_tight_violation_pct,
    );
    println!(
        "\n(smoke gate: tight violations {:.1}% <= {:.1}% threshold)",
        tight_aware.violation_rate * 100.0,
        max_tight_violation_pct
    );
}
