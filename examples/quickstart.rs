//! Quickstart: classify one sentence with latency-aware inference.
//!
//! Reproduces the paper's Fig. 1 narrative: the review snippet
//! "smart, provocative and blisteringly funny" is tokenized, the model
//! exits as soon as its off-ramp entropy is confident, and the DVFS
//! controller scales voltage/frequency so the sentence finishes exactly
//! at a 50 ms latency target.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_model::HashTokenizer;
use edgebert_tasks::Task;

fn main() {
    println!("== EdgeBERT quickstart: sentiment with latency-aware inference ==\n");

    // Train the SST-2 task artifacts (teacher -> pruned/quantized student
    // with adaptive spans -> off-ramps -> entropy predictor).
    println!("training SST-2 artifacts (test scale)...");
    let artifacts = TaskArtifacts::build(Task::Sst2, Scale::Test, 0xED6E);
    println!(
        "  student accuracy {:.1}% (teacher {:.1}%), encoder sparsity {:.0}%\n",
        artifacts.summary.student_accuracy * 100.0,
        artifacts.summary.teacher_accuracy * 100.0,
        artifacts.summary.encoder_sparsity * 100.0,
    );

    // An inference engine bound to a 50 ms per-sentence latency target,
    // on the energy-optimal (n = 16) accelerator with AAS + sparse
    // execution enabled.
    let engine = artifacts.engine_at(50e-3, 0, true);

    let tokenizer = HashTokenizer::new(Task::Sst2, artifacts.model.config.max_seq_len);
    for text in [
        "smart , provocative and blisteringly funny",
        "a dull , lifeless and disappointing mess",
    ] {
        let tokens = tokenizer.encode(text);
        let result = engine.run_latency_aware(&tokens);
        let sentiment = if result.prediction == 1 { "positive" } else { "negative" };
        println!("\"{text}\"");
        println!(
            "  -> {sentiment} | exit layer {}/{} (predictor forecast {:?})",
            result.exit_layer,
            artifacts.model.num_layers(),
            result.predicted_layer,
        );
        println!(
            "  -> {:.2} ms at {:.3} V / {:.0} MHz, {:.2} uJ, deadline {}",
            result.latency_s * 1e3,
            result.voltage,
            result.freq_hz / 1e6,
            result.energy_j * 1e6,
            if result.deadline_met { "met" } else { "MISSED" },
        );
        // Compare against the unbounded baselines.
        let base = engine.run_base(&tokens);
        let ee = engine.run_conventional_ee(&tokens);
        println!(
            "  -> energy vs Base {:.1}x, vs conventional EE {:.1}x\n",
            base.energy_j / result.energy_j,
            ee.energy_j / result.energy_j,
        );
    }
}
