//! Quickstart: classify one sentence with latency-aware inference
//! through the request/response serving API.
//!
//! Reproduces the paper's Fig. 1 narrative: the review snippet
//! "smart, provocative and blisteringly funny" is tokenized, the model
//! exits as soon as its off-ramp entropy is confident, and the DVFS
//! controller scales voltage/frequency so the sentence finishes exactly
//! at a 50 ms latency target.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edgebert::engine::{DropTarget, InferenceMode, InferenceRequest};
use edgebert::pipeline::{Scale, TaskArtifacts};
use edgebert_model::HashTokenizer;
use edgebert_tasks::Task;

fn main() {
    println!("== EdgeBERT quickstart: sentiment with latency-aware inference ==\n");

    // Train the SST-2 task artifacts (teacher -> pruned/quantized student
    // with adaptive spans -> off-ramps -> entropy predictor).
    println!("training SST-2 artifacts (test scale)...");
    let artifacts = TaskArtifacts::build(Task::Sst2, Scale::Test, 0xED6E);
    println!(
        "  student accuracy {:.1}% (teacher {:.1}%), encoder sparsity {:.0}%\n",
        artifacts.summary.student_accuracy * 100.0,
        artifacts.summary.teacher_accuracy * 100.0,
        artifacts.summary.encoder_sparsity * 100.0,
    );

    // An owned inference engine on the energy-optimal (n = 16)
    // accelerator with AAS + sparse execution, defaulting to a 50 ms
    // per-sentence deadline at the 1 %-drop tier. Individual requests
    // can override both.
    let engine = artifacts
        .engine_builder()
        .workload(artifacts.hardware_workload(true))
        .latency_target(50e-3)
        .drop_target(DropTarget::OnePercent)
        .build();

    let tokenizer = HashTokenizer::new(Task::Sst2, artifacts.model.config.max_seq_len);
    for text in [
        "smart , provocative and blisteringly funny",
        "a dull , lifeless and disappointing mess",
    ] {
        let tokens = tokenizer.encode(text);
        let response = engine.serve(&InferenceRequest::new(tokens.clone()));
        let result = &response.result;
        let sentiment = if result.prediction == 1 {
            "positive"
        } else {
            "negative"
        };
        println!("\"{text}\"");
        println!(
            "  -> {sentiment} | exit layer {}/{} (predictor forecast {:?})",
            result.exit_layer,
            artifacts.model.num_layers(),
            result.predicted_layer,
        );
        println!(
            "  -> {:.2} ms at {:.3} V / {:.0} MHz, {:.2} uJ, deadline ({:.0} ms) {}",
            result.latency_s * 1e3,
            result.voltage,
            result.freq_hz / 1e6,
            result.energy_j * 1e6,
            response.latency_target_s * 1e3,
            if result.deadline_met { "met" } else { "MISSED" },
        );
        // Compare against the unbounded baselines on the same engine.
        let base =
            engine.serve(&InferenceRequest::new(tokens.clone()).with_mode(InferenceMode::Base));
        let ee =
            engine.serve(&InferenceRequest::new(tokens).with_mode(InferenceMode::ConventionalEe));
        println!(
            "  -> energy vs Base {:.1}x, vs conventional EE {:.1}x\n",
            base.result.energy_j / result.energy_j,
            ee.result.energy_j / result.energy_j,
        );
    }
}
